#include "sim/trace.h"

#include <algorithm>
#include <bit>
#include <cstring>
#include <deque>
#include <fstream>
#include <map>
#include <set>
#include <sstream>

#include "net/traffic.h"
#include "rng/rng.h"
#include "sim/sweep.h"
#include "util/binio.h"
#include "util/check.h"
#include "util/thread_pool.h"

namespace manetcap::sim {

const char* to_string(TraceEventKind k) {
  switch (k) {
    case TraceEventKind::kInject:
      return "inject";
    case TraceEventKind::kRelay:
      return "relay";
    case TraceEventKind::kWiredForward:
      return "wired_forward";
    case TraceEventKind::kDeliver:
      return "deliver";
    case TraceEventKind::kDrop:
      return "drop";
    case TraceEventKind::kBsDown:
      return "bs_down";
    case TraceEventKind::kBsUp:
      return "bs_up";
    case TraceEventKind::kWireScale:
      return "wire_scale";
    case TraceEventKind::kRehome:
      return "rehome";
    case TraceEventKind::kMsLeave:
      return "ms_leave";
    case TraceEventKind::kMsJoin:
      return "ms_join";
    case TraceEventKind::kMobilityShift:
      return "mobility_shift";
  }
  return "?";
}

namespace {

// Version 1 has no fault section and allows event kinds 0..4 only; a trace
// whose context carries a fault timeline encodes as version 2. Fault-free
// traces therefore stay byte-identical to pre-fault builds.
constexpr char kMagic[8] = {'M', 'C', 'T', 'R', 'A', 'C', 'E', '1'};
constexpr char kMagic2[8] = {'M', 'C', 'T', 'R', 'A', 'C', 'E', '2'};

// Codec lives in util/binio.h (shared with the checkpoint format); the
// byte layout it produces is frozen by the golden traces.
using util::binio::ByteReader;
using util::binio::fnv1a;
using util::binio::get_id_list;
using util::binio::get_id_lists;
using util::binio::get_u64_fixed;
using util::binio::put_id_list;
using util::binio::put_id_lists;
using util::binio::put_u64_fixed;
using util::binio::put_varint;
using util::binio::unzigzag;
using util::binio::zigzag;

}  // namespace

void encode_faults(std::vector<std::uint8_t>& out,
                   const std::vector<TraceFault>& faults) {
  put_varint(out, faults.size());
  for (const TraceFault& f : faults) {
    out.push_back(f.kind);
    put_varint(out, f.slot);
    put_id_list(out, f.bs);
    put_u64_fixed(out, std::bit_cast<std::uint64_t>(f.scale));
    put_id_list(out, f.rehomed_ms);
    put_id_lists(out, f.rehomed_serving);
  }
}

std::vector<TraceFault> decode_faults(util::binio::ByteReader& r) {
  const std::uint64_t nf = r.varint();
  MANETCAP_CHECK_MSG(nf <= (1ULL << 24),
                     r.label << ": fault timeline too large");
  std::vector<TraceFault> faults(nf);
  for (auto& f : faults) {
    f.kind = r.u8();
    MANETCAP_CHECK_MSG(f.kind <= TraceFault::kKindShift,
                       r.label << ": invalid fault kind");
    f.slot = r.u32v();
    f.bs = get_id_list(r);
    f.scale = util::binio::get_f64(r);
    f.rehomed_ms = get_id_list(r);
    f.rehomed_serving = get_id_lists(r);
  }
  return faults;
}

void encode_events(std::vector<std::uint8_t>& out,
                   const std::vector<TraceEvent>& events) {
  put_varint(out, events.size());
  std::uint32_t prev_slot = 0;
  for (const TraceEvent& e : events) {
    out.push_back(static_cast<std::uint8_t>(e.kind));
    put_varint(out, zigzag(static_cast<std::int64_t>(e.slot) -
                           static_cast<std::int64_t>(prev_slot)));
    prev_slot = e.slot;
    put_varint(out, e.flow);
    put_varint(out, e.hop);
    put_varint(out, e.from);
    put_varint(out, e.to);
  }
}

std::vector<TraceEvent> decode_events(util::binio::ByteReader& r,
                                      std::uint8_t max_kind) {
  const std::uint64_t count = r.varint();
  MANETCAP_CHECK_MSG(count <= (1ULL << 32),
                     r.label << ": event count too large");
  std::vector<TraceEvent> events(count);
  std::int64_t prev_slot = 0;
  for (auto& e : events) {
    const std::uint8_t kind = r.u8();
    MANETCAP_CHECK_MSG(kind <= max_kind, r.label << ": invalid event kind");
    e.kind = static_cast<TraceEventKind>(kind);
    const std::int64_t slot = prev_slot + unzigzag(r.varint());
    MANETCAP_CHECK_MSG(slot >= 0 && slot <= 0xffffffffLL,
                       r.label << ": event slot out of range");
    e.slot = static_cast<std::uint32_t>(slot);
    prev_slot = slot;
    e.flow = r.u32v();
    e.hop = r.u32v();
    e.from = r.u32v();
    e.to = r.u32v();
  }
  return events;
}

std::vector<std::uint8_t> Trace::encode() const {
  const bool v2 = !context.faults.empty();
  std::vector<std::uint8_t> out;
  out.reserve(64 + events.size() * 6);
  const char* magic = v2 ? kMagic2 : kMagic;
  for (int i = 0; i < 8; ++i)
    out.push_back(static_cast<std::uint8_t>(magic[i]));
  out.push_back(static_cast<std::uint8_t>(context.scheme));
  out.push_back(static_cast<std::uint8_t>(context.mobility));
  put_varint(out, context.n);
  put_varint(out, context.k);
  put_varint(out, context.slots);
  put_varint(out, context.warmup);
  put_varint(out, context.max_queue);
  put_varint(out, context.source_backlog);
  put_varint(out, context.seed);
  put_u64_fixed(out, std::bit_cast<std::uint64_t>(context.wired_c));
  put_id_list(out, context.dest);
  put_id_list(out, context.home_cell);
  put_id_lists(out, context.paths);
  put_id_lists(out, context.serving);
  if (v2) encode_faults(out, context.faults);

  encode_events(out, events);
  put_varint(out, footer.injected);
  put_varint(out, footer.delivered);
  put_varint(out, footer.dropped);
  put_u64_fixed(out, fnv1a(out.data(), out.size()));
  return out;
}

Trace Trace::decode(const std::vector<std::uint8_t>& bytes) {
  MANETCAP_CHECK_MSG(bytes.size() >= 8 + 8, "trace: buffer too small");
  const bool v2 = std::memcmp(bytes.data(), kMagic2, 8) == 0;
  MANETCAP_CHECK_MSG(v2 || std::memcmp(bytes.data(), kMagic, 8) == 0,
                     "trace: bad magic (not an MCTRACE1/MCTRACE2 file)");
  const std::size_t body = bytes.size() - 8;
  MANETCAP_CHECK_MSG(get_u64_fixed(bytes, body) == fnv1a(bytes.data(), body),
                     "trace: checksum mismatch (corrupted trace)");

  Trace t;
  ByteReader r{bytes, 8, body, "trace"};
  const std::uint8_t scheme = r.u8();
  MANETCAP_CHECK_MSG(scheme <= 3, "trace: invalid scheme id");
  t.context.scheme = static_cast<SlotScheme>(scheme);
  const std::uint8_t mobility = r.u8();
  MANETCAP_CHECK_MSG(mobility <= 3, "trace: invalid mobility id");
  t.context.mobility = static_cast<SlotMobility>(mobility);
  t.context.n = r.u32v();
  t.context.k = r.u32v();
  t.context.slots = r.u32v();
  t.context.warmup = r.u32v();
  t.context.max_queue = r.u32v();
  t.context.source_backlog = r.u32v();
  t.context.seed = r.varint();
  t.context.wired_c = std::bit_cast<double>(get_u64_fixed(bytes, r.pos));
  r.pos += 8;
  t.context.dest = get_id_list(r);
  t.context.home_cell = get_id_list(r);
  t.context.paths = get_id_lists(r);
  t.context.serving = get_id_lists(r);
  if (v2) t.context.faults = decode_faults(r);

  t.events = decode_events(r, v2 ? 11 : 4);
  t.footer.injected = r.varint();
  t.footer.delivered = r.varint();
  t.footer.dropped = r.varint();
  MANETCAP_CHECK_MSG(r.pos == r.end, "trace: trailing bytes after footer");
  return t;
}

void Trace::save(const std::string& path) const {
  const auto bytes = encode();
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  MANETCAP_CHECK_MSG(out.good(), "trace: cannot open for write: " << path);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  MANETCAP_CHECK_MSG(out.good(), "trace: write failed: " << path);
}

Trace Trace::load(const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  MANETCAP_CHECK_MSG(in.good(), "trace: cannot open for read: " << path);
  const std::streamsize size = in.tellg();
  in.seekg(0);
  std::vector<std::uint8_t> bytes(static_cast<std::size_t>(size));
  in.read(reinterpret_cast<char*>(bytes.data()), size);
  MANETCAP_CHECK_MSG(in.good(), "trace: read failed: " << path);
  return decode(bytes);
}

// --- replay checker -------------------------------------------------------

namespace {

/// Token-bucket slack: the simulator accrues credit incrementally across
/// attempt slots while the checker accrues it in one step per forward, so
/// the two sums can differ in the last few ulps. Any real infeasibility
/// (double spend, burst past the bucket) differs by ≥ 1 full credit unit.
constexpr double kCreditSlack = 1e-6;

struct ViolationSink {
  std::vector<TraceViolation>& out;
  void add(const char* invariant, std::uint64_t event_index,
           std::string detail) {
    out.push_back({invariant, event_index, std::move(detail)});
  }
};

std::string describe_event(const TraceEvent& e) {
  std::ostringstream os;
  os << to_string(e.kind) << " slot=" << e.slot << " flow=" << e.flow
     << " hop=" << e.hop << " from=" << e.from << " to=" << e.to;
  return os.str();
}

/// The infrastructure timeline derived from TraceContext::faults, in the
/// query shapes the replay needs. Built once per verification; all state
/// the checker applies comes from here (the timeline), never from the
/// stream's fault markers — so a corrupted marker is caught by comparison
/// without desynchronizing the replay. Empty timeline = everything always
/// live, serving sets never change: exactly the pre-fault checker.
struct FaultModel {
  std::uint32_t n = 0;
  /// Per-BS (index = node − n) liveness transitions (slot, went_down),
  /// slots ascending.
  std::vector<std::vector<std::pair<std::uint32_t, bool>>> transitions;
  /// (slot, BS node) pairs at which a BS went down — the only positions a
  /// kDrop is legal.
  std::set<std::pair<std::uint32_t, std::uint32_t>> down_at;
  /// Per-MS serving-set versions (from_slot, list), slots ascending; the
  /// base version is TraceContext::serving.
  std::vector<std::vector<
      std::pair<std::uint32_t, const std::vector<std::uint32_t>*>>>
      serving_versions;
  /// Per-edge accrual-scale changes (slot, scale), slots ascending.
  std::map<std::pair<std::uint32_t, std::uint32_t>,
           std::vector<std::pair<std::uint32_t, double>>>
      scale_changes;
  /// MS churn: per-MS presence transitions (slot, present_after), slots
  /// ascending; empty = everyone present throughout. An MS whose first
  /// churn event is a join starts the run absent (the simulator's rule).
  std::vector<std::vector<std::pair<std::uint32_t, bool>>> ms_transitions;
  std::vector<std::uint8_t> ms_initially_absent;
  /// (slot, MS) pairs at which an MS departed — the churn positions a
  /// kDrop is legal (the leaver's own queue, or packets addressed to it).
  std::set<std::pair<std::uint32_t, std::uint32_t>> ms_leave_at;
  /// The exact fault-marker events the stream must contain, in order.
  std::vector<TraceEvent> markers;

  bool is_down(std::uint32_t node, std::uint32_t slot) const {
    if (transitions.empty() || node < n) return false;
    const std::size_t l = node - n;
    if (l >= transitions.size()) return false;
    bool down = false;
    for (const auto& [at, went_down] : transitions[l]) {
      if (at > slot) break;
      down = went_down;
    }
    return down;
  }

  bool ms_absent(std::uint32_t ms, std::uint32_t slot) const {
    if (ms_transitions.empty() || ms >= ms_transitions.size()) return false;
    bool present = ms_initially_absent[ms] == 0;
    for (const auto& [at, present_after] : ms_transitions[ms]) {
      if (at > slot) break;
      present = present_after;
    }
    return !present;
  }

  const std::vector<std::uint32_t>& serving_at(const TraceContext& c,
                                               std::uint32_t ms,
                                               std::uint32_t slot) const {
    const std::vector<std::uint32_t>* best = &c.serving[ms];
    if (!serving_versions.empty()) {
      for (const auto& [from, list] : serving_versions[ms]) {
        if (from > slot) break;
        best = list;
      }
    }
    return *best;
  }
};

/// Precondition: context_ok passed (fault fields are in range). The
/// pointers into `c.faults` stay valid for the verification's lifetime.
FaultModel build_fault_model(const TraceContext& c) {
  FaultModel fm;
  fm.n = c.n;
  if (c.faults.empty()) return fm;
  fm.transitions.resize(c.k);
  fm.serving_versions.resize(c.n);
  for (const TraceFault& tf : c.faults) {
    switch (tf.kind) {
      case TraceFault::kKindBsDown:
        for (std::uint32_t b : tf.bs) {
          fm.transitions[b - c.n].push_back({tf.slot, true});
          fm.down_at.insert({tf.slot, b});
          fm.markers.push_back(
              {TraceEventKind::kBsDown, tf.slot, 0, 0, b, b});
        }
        break;
      case TraceFault::kKindBsUp:
        for (std::uint32_t b : tf.bs) {
          fm.transitions[b - c.n].push_back({tf.slot, false});
          fm.markers.push_back({TraceEventKind::kBsUp, tf.slot, 0, 0, b, b});
        }
        break;
      case TraceFault::kKindWireScale: {
        const auto key = std::minmax(tf.bs[0], tf.bs[1]);
        fm.scale_changes[{key.first, key.second}].push_back(
            {tf.slot, tf.scale});
        fm.markers.push_back({TraceEventKind::kWireScale, tf.slot, 0, 0,
                              key.first, key.second});
        break;
      }
      case TraceFault::kKindMsLeave: {
        const std::uint32_t ms = tf.bs[0];
        if (fm.ms_transitions.empty()) {
          fm.ms_transitions.resize(c.n);
          fm.ms_initially_absent.assign(c.n, 0);
        }
        fm.ms_transitions[ms].push_back({tf.slot, false});
        fm.ms_leave_at.insert({tf.slot, ms});
        fm.markers.push_back({TraceEventKind::kMsLeave, tf.slot, 0, 0, ms, ms});
        break;
      }
      case TraceFault::kKindMsJoin: {
        const std::uint32_t ms = tf.bs[0];
        if (fm.ms_transitions.empty()) {
          fm.ms_transitions.resize(c.n);
          fm.ms_initially_absent.assign(c.n, 0);
        }
        if (fm.ms_transitions[ms].empty()) fm.ms_initially_absent[ms] = 1;
        fm.ms_transitions[ms].push_back({tf.slot, true});
        fm.markers.push_back({TraceEventKind::kMsJoin, tf.slot, 0, 0, ms, ms});
        break;
      }
      case TraceFault::kKindShift:
        fm.markers.push_back(
            {TraceEventKind::kMobilityShift, tf.slot, 0, 0, 0, 0});
        break;
      default:
        break;
    }
    for (std::size_t j = 0; j < tf.rehomed_ms.size(); ++j)
      fm.serving_versions[tf.rehomed_ms[j]].push_back(
          {tf.slot, &tf.rehomed_serving[j]});
  }
  return fm;
}

/// Context sanity: sizes and id ranges the rest of the checker indexes
/// with. A trace failing here is rejected before replay.
bool context_ok(const TraceContext& c, ViolationSink& sink) {
  std::ostringstream os;
  const auto fail = [&](const std::string& what) {
    sink.add("context_invalid", 0, what);
    return false;
  };
  if (c.n == 0) return fail("n == 0");
  if (c.slots == 0 || c.warmup >= c.slots) return fail("bad slots/warmup");
  if (c.max_queue == 0 || c.source_backlog == 0)
    return fail("bad queue/backlog bounds");
  if (c.dest.size() != c.n) return fail("dest size != n");
  for (std::uint32_t d : c.dest)
    if (d >= c.n) return fail("dest id out of range");
  const bool infra =
      c.scheme == SlotScheme::kSchemeB || c.scheme == SlotScheme::kSchemeC;
  if (c.scheme == SlotScheme::kSchemeA) {
    if (c.home_cell.size() != c.n) return fail("home_cell size != n");
    if (c.paths.size() != c.n) return fail("paths size != n");
    for (const auto& p : c.paths)
      if (p.empty()) return fail("empty H-V path");
  }
  if (infra) {
    if (c.k == 0) return fail("infrastructure scheme with k == 0");
    if (c.serving.size() != c.n) return fail("serving size != n");
    for (const auto& s : c.serving) {
      if (s.empty()) return fail("MS with empty serving set");
      for (std::uint32_t l : s)
        if (l < c.n || l >= c.n + c.k) return fail("serving id not a BS");
    }
    if (c.scheme == SlotScheme::kSchemeC)
      for (const auto& s : c.serving)
        if (s.size() != 1) return fail("scheme C association must be 1 BS");
  }
  if (!c.faults.empty()) {
    // Churn (leave/join) and mobility-shift entries are legal on any
    // scheme; infrastructure entries (BS outage/revival, wire scaling)
    // still require one.
    std::uint32_t prev = 0;
    for (const TraceFault& tf : c.faults) {
      if (tf.slot < prev)
        return fail("fault timeline slots must be non-decreasing");
      prev = tf.slot;
      if (tf.slot >= c.slots) return fail("fault slot out of range");
      if (tf.kind > TraceFault::kKindShift)
        return fail("invalid fault kind");
      if (tf.kind == TraceFault::kKindMsLeave ||
          tf.kind == TraceFault::kKindMsJoin) {
        if (tf.bs.size() != 1 || tf.bs[0] >= c.n)
          return fail("churn subject must be a single MS id");
        if (!tf.rehomed_ms.empty())
          return fail("churn entry cannot re-home MSs");
        continue;
      }
      if (tf.kind == TraceFault::kKindShift) {
        if (!tf.bs.empty()) return fail("shift entry carries no subject ids");
        if (!(tf.scale >= 0.0 && tf.scale <= 3.0))
          return fail("shift regime ordinal out of range");
        if (!tf.rehomed_ms.empty())
          return fail("shift entry cannot re-home MSs");
        continue;
      }
      if (!infra)
        return fail("fault timeline without an infrastructure scheme");
      if (tf.bs.empty()) return fail("fault with no subject BS");
      for (std::uint32_t b : tf.bs)
        if (b < c.n || b >= c.n + c.k) return fail("fault subject not a BS");
      if (tf.kind == TraceFault::kKindWireScale) {
        if (tf.bs.size() != 2 || tf.bs[0] == tf.bs[1])
          return fail("wire fault needs two distinct BS endpoints");
        if (!(tf.scale >= 0.0 && tf.scale <= 1.0))
          return fail("wire scale outside [0, 1]");
        if (!tf.rehomed_ms.empty())
          return fail("wire fault cannot re-home MSs");
      }
      if (tf.rehomed_ms.size() != tf.rehomed_serving.size())
        return fail("re-home tables disagree in length");
      for (std::size_t j = 0; j < tf.rehomed_ms.size(); ++j) {
        if (tf.rehomed_ms[j] >= c.n) return fail("rehomed MS out of range");
        if (tf.rehomed_serving[j].empty())
          return fail("re-home to an empty serving set");
        for (std::uint32_t b : tf.rehomed_serving[j])
          if (b < c.n || b >= c.n + c.k)
            return fail("rehomed serving id not a BS");
        if (c.scheme == SlotScheme::kSchemeC &&
            tf.rehomed_serving[j].size() != 1)
          return fail("scheme C re-home must be exactly 1 BS");
      }
    }
  }
  return true;
}

/// Serial structural replay: slot monotonicity, packet existence/location,
/// queue bounds, fault-timeline consistency and wired-credit feasibility
/// are global properties of the interleaved stream, so they run once on
/// the calling thread.
void replay_global(const Trace& trace, const FaultModel& fm,
                   TraceVerdict& verdict, ViolationSink& sink) {
  const TraceContext& c = trace.context;
  const std::uint32_t num_nodes = c.n + c.k;

  struct Pkt {
    std::uint32_t flow;
  };
  std::vector<std::deque<Pkt>> queues(num_nodes);
  struct Edge {
    double credit = 0.0;
    std::uint64_t last = 0;
    double scale = 1.0;
    std::size_t next_change = 0;  // cursor into fm.scale_changes entry
  };
  std::map<std::pair<std::uint32_t, std::uint32_t>, Edge> wires;
  const double cap = std::max(1.0, 4.0 * c.wired_c);
  std::size_t marker_cursor = 0;

  // Piecewise credit accrual through the end of `slot`, honoring every
  // scale change the timeline schedules up to it (a change at slot t
  // applies from t onward; severing dumps the bucket, as the simulator
  // does). With no changes this reduces to the historical one-step
  // accrual — a sound upper bound on the simulator's credit, which starts
  // accruing only at first use.
  const auto accrue = [&](Edge& w, const std::pair<std::uint32_t,
                                                   std::uint32_t>& key,
                          std::uint32_t slot) {
    const auto it = fm.scale_changes.find(key);
    if (it != fm.scale_changes.end()) {
      const auto& changes = it->second;
      while (w.next_change < changes.size() &&
             changes[w.next_change].first <= slot) {
        const std::uint64_t at = changes[w.next_change].first;
        if (at > w.last) {
          w.credit = std::min(
              cap, w.credit + c.wired_c * w.scale *
                       static_cast<double>(at - w.last));
          w.last = at;
        }
        w.scale = changes[w.next_change].second;
        if (w.scale == 0.0) w.credit = 0.0;
        ++w.next_change;
      }
    }
    const std::uint64_t now = static_cast<std::uint64_t>(slot) + 1;
    if (now > w.last) {
      w.credit = std::min(cap, w.credit + c.wired_c * w.scale *
                                   static_cast<double>(now - w.last));
      w.last = now;
    }
  };

  // Removes the FIFO-first packet of `flow` at `node`; false if absent.
  const auto take = [&](std::uint32_t node, std::uint32_t flow) {
    auto& q = queues[node];
    for (auto it = q.begin(); it != q.end(); ++it) {
      if (it->flow == flow) {
        q.erase(it);
        return true;
      }
    }
    return false;
  };
  const auto put = [&](std::uint32_t node, std::uint32_t flow,
                       std::uint64_t i) {
    if (queues[node].size() >= c.max_queue)
      sink.add("queue_overflow", i,
               "queue at node " + std::to_string(node) + " exceeds max_queue");
    queues[node].push_back({flow});
  };

  std::uint32_t prev_slot = 0;
  for (std::uint64_t i = 0; i < trace.events.size(); ++i) {
    const TraceEvent& e = trace.events[i];
    if (e.slot < prev_slot)
      sink.add("slot_monotone", i,
               "slot " + std::to_string(e.slot) + " after slot " +
                   std::to_string(prev_slot));
    prev_slot = std::max(prev_slot, e.slot);
    if (e.slot >= c.slots || e.flow >= c.n) {
      sink.add("event_range", i, describe_event(e));
      continue;
    }
    switch (e.kind) {
      case TraceEventKind::kInject:
        if (e.to >= num_nodes || e.from >= num_nodes) {
          sink.add("event_range", i, describe_event(e));
          break;
        }
        if (fm.is_down(e.to, e.slot))
          sink.add("dead_bs", i,
                   "inject targets a BS the timeline has down: " +
                       describe_event(e));
        if (fm.ms_absent(e.flow, e.slot) ||
            fm.ms_absent(c.dest[e.flow], e.slot))
          sink.add("absent_ms", i,
                   "inject while the source or its destination is absent: " +
                       describe_event(e));
        put(e.to, e.flow, i);
        ++verdict.injected;
        break;
      case TraceEventKind::kRelay:
        if (e.from >= c.n || e.to >= c.n) {
          sink.add("event_range", i,
                   "relay endpoint is not an MS: " + describe_event(e));
          break;
        }
        if (fm.ms_absent(e.from, e.slot) || fm.ms_absent(e.to, e.slot))
          sink.add("absent_ms", i,
                   "relay touches an MS the timeline has absent: " +
                       describe_event(e));
        if (!take(e.from, e.flow)) {
          sink.add("packet_not_at_node", i, describe_event(e));
          break;
        }
        put(e.to, e.flow, i);
        ++verdict.relayed;
        break;
      case TraceEventKind::kWiredForward: {
        if (e.from < c.n || e.from >= num_nodes || e.to < c.n ||
            e.to >= num_nodes) {
          sink.add("wired_endpoint", i,
                   "wired endpoint is not a BS: " + describe_event(e));
          break;
        }
        if (!take(e.from, e.flow)) {
          sink.add("packet_not_at_node", i, describe_event(e));
          break;
        }
        if (fm.is_down(e.from, e.slot) || fm.is_down(e.to, e.slot))
          sink.add("dead_bs", i,
                   "wired forward touches a BS the timeline has down: " +
                       describe_event(e));
        if (e.from != e.to) {
          // Feasibility bound: the most credit the edge can legally hold
          // is continuous accrual since slot 0 (piecewise over the
          // timeline's scale changes), clamped by the bucket. The
          // simulator is stricter (accrual starts at first use), so
          // every honestly captured trace passes; a forward the bucket
          // could never have funded fails.
          const auto mm = std::minmax(e.from, e.to);
          const std::pair<std::uint32_t, std::uint32_t> key{mm.first,
                                                            mm.second};
          Edge& w = wires[key];
          accrue(w, key, e.slot);
          if (w.credit < 1.0 - kCreditSlack) {
            std::ostringstream os;
            os << "edge (" << key.first << "," << key.second
               << ") credit " << w.credit << " < 1 at " << describe_event(e);
            sink.add("wired_credit", i, os.str());
            w.credit = 0.0;
          } else {
            w.credit -= 1.0;
          }
          put(e.to, e.flow, i);
        } else {
          // In-place hop-0 → hop-1 promotion at a serving BS: no queue
          // move, no credit spend.
          queues[e.from].push_back({e.flow});
        }
        ++verdict.wired_forwarded;
        break;
      }
      case TraceEventKind::kDeliver:
        if (e.from >= num_nodes || e.to >= c.n) {
          sink.add("event_range", i, describe_event(e));
          break;
        }
        if (fm.is_down(e.from, e.slot))
          sink.add("dead_bs", i,
                   "delivery from a BS the timeline has down: " +
                       describe_event(e));
        if (fm.ms_absent(e.to, e.slot))
          sink.add("absent_ms", i,
                   "delivery to an MS the timeline has absent: " +
                       describe_event(e));
        if (!take(e.from, e.flow)) {
          sink.add("packet_not_at_node", i, describe_event(e));
          break;
        }
        ++verdict.delivered;
        break;
      case TraceEventKind::kDrop: {
        // Legal as queue loss at a BS the timeline downs this slot, or as
        // churn loss: the dropping node is an MS leaving this slot (its
        // whole queue goes), or the packet's destination is.
        const bool bs_ok =
            fm.down_at.find({e.slot, e.from}) != fm.down_at.end();
        const bool churn_ok =
            fm.ms_leave_at.count({e.slot, e.from}) != 0 ||
            fm.ms_leave_at.count({e.slot, c.dest[e.flow]}) != 0;
        if (e.from != e.to || (!bs_ok && !churn_ok))
          sink.add("drop_forbidden", i,
                   "a drop is legal only at a BS going down or an MS "
                   "leaving this slot: " +
                       describe_event(e));
        if (!take(e.from, e.flow))
          sink.add("packet_not_at_node", i, describe_event(e));
        ++verdict.dropped;
        break;
      }
      case TraceEventKind::kBsDown:
      case TraceEventKind::kBsUp:
      case TraceEventKind::kWireScale:
      case TraceEventKind::kMsLeave:
      case TraceEventKind::kMsJoin:
      case TraceEventKind::kMobilityShift:
        // Markers must reproduce the timeline exactly, in order. State is
        // applied from the timeline, so a corrupted marker cannot
        // desynchronize the replay.
        if (marker_cursor >= fm.markers.size() ||
            !(fm.markers[marker_cursor] == e)) {
          sink.add("fault_timeline", i,
                   "stream fault marker does not match the context "
                   "timeline: " +
                       describe_event(e));
        }
        if (marker_cursor < fm.markers.size()) ++marker_cursor;
        break;
      case TraceEventKind::kRehome:
        if (fm.markers.empty()) {
          sink.add("fault_timeline", i,
                   "re-home without a fault timeline: " + describe_event(e));
          break;
        }
        if (e.from != e.to || e.from < c.n || e.from >= num_nodes ||
            e.hop != 0) {
          sink.add("event_range", i, describe_event(e));
          break;
        }
        if (fm.is_down(e.from, e.slot))
          sink.add("dead_bs", i,
                   "re-home demotion at a BS the timeline has down: " +
                       describe_event(e));
        break;
    }
  }

  if (marker_cursor != fm.markers.size())
    sink.add("fault_timeline", trace.events.size(),
             std::to_string(fm.markers.size() - marker_cursor) +
                 " timeline fault(s) have no stream marker");

  if (trace.footer.injected != verdict.injected ||
      trace.footer.delivered != verdict.delivered ||
      trace.footer.dropped != verdict.dropped) {
    std::ostringstream os;
    os << "footer (injected=" << trace.footer.injected
       << ", delivered=" << trace.footer.delivered
       << ", dropped=" << trace.footer.dropped << ") vs replayed (injected="
       << verdict.injected << ", delivered=" << verdict.delivered
       << ", dropped=" << verdict.dropped << ")";
    sink.add("footer_totals", trace.events.size(), os.str());
  }
}

/// Per-flow lifecycle checks: hop-phase legality, path adjacency, the
/// two-hop limit, serving-BS membership, flow-window and inject-location
/// bounds are all functions of one flow's event subsequence, so flows
/// verify independently (and in parallel).
void check_flow(const Trace& trace, const FaultModel& fm, std::uint32_t f,
                const std::vector<std::uint32_t>& event_ids,
                std::vector<TraceViolation>& out) {
  const TraceContext& c = trace.context;
  ViolationSink sink{out};
  const bool infra =
      c.scheme == SlotScheme::kSchemeB || c.scheme == SlotScheme::kSchemeC;
  const std::uint32_t dst = c.dest[f];

  struct Pkt {
    std::uint32_t hop = 0;
    std::uint32_t node = 0;
    std::uint32_t relays = 0;
  };
  std::vector<Pkt> live;  // FIFO by injection order

  // FIFO-first packet of this flow at `node` whose hop matches the event's
  // expected pre-hop. A flow can hold several packets at one node at
  // different phases (e.g. a fresh hop-0 uplink next to an already-wired
  // hop-1 packet), so matching must be hop-aware; when no packet matches
  // the expected hop we fall back to any packet at the node so that a
  // mutated-hop event is flagged against the packet it corrupts instead of
  // cascading into packet_not_at_node noise.
  const auto find_at = [&](std::uint32_t node, std::uint32_t want_hop) -> Pkt* {
    Pkt* fallback = nullptr;
    for (Pkt& p : live) {
      if (p.node != node) continue;
      if (p.hop == want_hop) return &p;
      if (fallback == nullptr) fallback = &p;
    }
    return fallback;
  };
  // Serving sets are slot-dependent under a fault timeline: every
  // membership check consults the version in force at the event's slot.
  const auto serving_of =
      [&](std::uint32_t ms, std::uint32_t slot) -> const auto& {
    return fm.serving_at(c, ms, slot);
  };
  const auto serving_has = [&](std::uint32_t ms, std::uint32_t bs,
                               std::uint32_t slot) {
    const auto& s = serving_of(ms, slot);
    return std::find(s.begin(), s.end(), bs) != s.end();
  };

  for (const std::uint32_t ei : event_ids) {
    const TraceEvent& e = trace.events[ei];
    if (e.flow >= c.n) continue;  // flagged by the global pass
    switch (e.kind) {
      case TraceEventKind::kInject: {
        if (live.size() >= c.source_backlog)
          sink.add("window_overflow", ei,
                   "flow " + std::to_string(f) + " exceeds source_backlog=" +
                       std::to_string(c.source_backlog));
        bool loc_ok = e.from == f;
        switch (c.scheme) {
          case SlotScheme::kSchemeA:
          case SlotScheme::kTwoHop:
            // Ad hoc schemes: the source injects into its own queue.
            loc_ok = loc_ok && e.to == f;
            break;
          case SlotScheme::kSchemeB:
            // Uplink to whichever BS the S* meeting provided.
            loc_ok = loc_ok && e.to >= c.n && e.to < c.n + c.k;
            break;
          case SlotScheme::kSchemeC:
            // Static TDMA: uplink only to the cell's own BS.
            loc_ok = loc_ok && e.to == serving_of(f, e.slot)[0];
            break;
        }
        if (!loc_ok) sink.add("inject_location", ei, describe_event(e));
        if (e.hop != 0)
          sink.add("hop_monotone", ei,
                   "inject must create a hop-0 packet: " + describe_event(e));
        live.push_back({0, e.to, 0});
        break;
      }
      case TraceEventKind::kRelay: {
        if (infra) {
          sink.add("relay_forbidden", ei,
                   "MS relays do not exist in scheme " +
                       sim::to_string(c.scheme) + ": " + describe_event(e));
          break;
        }
        Pkt* p = find_at(e.from, e.hop == 0 ? 0 : e.hop - 1);
        if (p == nullptr) break;  // global pass flags packet_not_at_node
        if (c.scheme == SlotScheme::kSchemeA) {
          const auto& path = c.paths[f];
          if (e.hop != p->hop + 1)
            sink.add("hop_monotone", ei,
                     "H-V path position must advance by exactly 1 (was " +
                         std::to_string(p->hop) + "): " + describe_event(e));
          if (e.hop >= path.size())
            sink.add("path_range", ei,
                     "hop beyond the flow's H-V path (length " +
                         std::to_string(path.size()) + "): " +
                         describe_event(e));
          else if (e.to < c.n && c.home_cell[e.to] != path[e.hop])
            sink.add("path_adjacency", ei,
                     "receiver's home squarelet " +
                         std::to_string(c.home_cell[e.to]) +
                         " is not path[" + std::to_string(e.hop) + "]=" +
                         std::to_string(path[e.hop]) + ": " +
                         describe_event(e));
        } else {  // two-hop
          if (e.from != f || p->relays != 0 || e.hop != 1)
            sink.add("two_hop_limit", ei,
                     "only source→relay→destination is legal: " +
                         describe_event(e));
          ++p->relays;
        }
        p->hop = e.hop;
        p->node = e.to;
        break;
      }
      case TraceEventKind::kWiredForward: {
        if (!infra) {
          sink.add("wired_forbidden", ei,
                   "no wired backbone in scheme " + sim::to_string(c.scheme) +
                       ": " + describe_event(e));
          break;
        }
        Pkt* p = find_at(e.from, 0);
        if (p == nullptr) break;
        if (p->hop != 0 || e.hop != 1)
          sink.add("wired_hop", ei,
                   "wired phase must take the packet from hop 0 to hop 1 "
                   "exactly once: " +
                       describe_event(e));
        if (!serving_has(dst, e.to, e.slot))
          sink.add("serving_bs", ei,
                   "wired target does not serve destination " +
                       std::to_string(dst) + ": " + describe_event(e));
        p->hop = e.hop;
        p->node = e.to;
        break;
      }
      case TraceEventKind::kDeliver: {
        if (e.to != dst)
          sink.add("deliver_dest", ei,
                   "flow " + std::to_string(f) + " terminates at MS " +
                       std::to_string(dst) + ": " + describe_event(e));
        Pkt* p = find_at(e.from, e.hop);
        if (p == nullptr) break;
        if (infra) {
          if (p->hop != 1 || e.hop != 1)
            sink.add("deliver_hop", ei,
                     "infrastructure delivery is downlink-only (hop 1): " +
                         describe_event(e));
          const bool bs_ok =
              c.scheme == SlotScheme::kSchemeC
                  ? e.from == serving_of(dst, e.slot)[0]
                  : e.from >= c.n && serving_has(dst, e.from, e.slot);
          if (!bs_ok)
            sink.add("serving_bs", ei,
                     "delivering BS does not serve destination " +
                         std::to_string(dst) + ": " + describe_event(e));
        }
        live.erase(live.begin() + (p - live.data()));
        break;
      }
      case TraceEventKind::kDrop: {
        // Legality (only at a BS going down this slot) is judged by the
        // global pass; here the packet just leaves the flow's window.
        Pkt* p = find_at(e.from, e.hop);
        if (p != nullptr) live.erase(live.begin() + (p - live.data()));
        break;
      }
      case TraceEventKind::kRehome: {
        Pkt* p = find_at(e.from, 1);
        if (p == nullptr) break;  // global pass has no queue move to flag,
                                  // but a missing packet means corruption
                                  // elsewhere already reported
        if (p->hop != 1 || e.hop != 0)
          sink.add("rehome_hop", ei,
                   "re-home demotes a hop-1 packet to hop 0: " +
                       describe_event(e));
        if (infra && serving_has(dst, e.from, e.slot))
          sink.add("rehome_legality", ei,
                   "BS still serves destination " + std::to_string(dst) +
                       ", demotion unjustified: " + describe_event(e));
        // Back to the wired phase: the hop 0→1 contract permits exactly
        // one (re-)forward from here on.
        p->hop = 0;
        break;
      }
      case TraceEventKind::kBsDown:
      case TraceEventKind::kBsUp:
      case TraceEventKind::kWireScale:
      case TraceEventKind::kMsLeave:
      case TraceEventKind::kMsJoin:
      case TraceEventKind::kMobilityShift:
        break;  // markers carry no packet; excluded from the fan-out
    }
  }
}

}  // namespace

std::string TraceVerdict::summary() const {
  std::ostringstream os;
  os << (ok ? "PASS" : "FAIL") << " injected=" << injected
     << " delivered=" << delivered << " relayed=" << relayed
     << " wired_forwarded=" << wired_forwarded << " dropped=" << dropped
     << " violations=" << violations.size() << "\n";
  for (const TraceViolation& v : violations)
    os << "  " << v.invariant << " @event " << v.event_index << ": "
       << v.detail << "\n";
  return os.str();
}

TraceVerdict verify_trace(const Trace& trace,
                          const TraceVerifyOptions& options) {
  TraceVerdict verdict;
  ViolationSink sink{verdict.violations};
  if (!context_ok(trace.context, sink)) {
    verdict.ok = false;
    return verdict;
  }

  const FaultModel fault_model = build_fault_model(trace.context);
  replay_global(trace, fault_model, verdict, sink);

  // Per-flow fan-out. Each flow writes a pre-allocated slot; the merge
  // below runs serially in flow order (the same fixed-order absorb
  // discipline run_sweep uses), so the verdict — order, text, everything —
  // is bit-identical for any thread count. Fault markers carry flow 0 but
  // no packet, so they stay out of the fan-out.
  const std::uint32_t n = trace.context.n;
  std::vector<std::vector<std::uint32_t>> by_flow(n);
  for (std::uint32_t i = 0; i < trace.events.size(); ++i) {
    const TraceEventKind kind = trace.events[i].kind;
    if (kind == TraceEventKind::kBsDown || kind == TraceEventKind::kBsUp ||
        kind == TraceEventKind::kWireScale ||
        kind == TraceEventKind::kMsLeave || kind == TraceEventKind::kMsJoin ||
        kind == TraceEventKind::kMobilityShift)
      continue;
    const std::uint32_t f = trace.events[i].flow;
    if (f < n) by_flow[f].push_back(i);
  }
  std::vector<std::vector<TraceViolation>> flow_violations(n);
  const auto check_one = [&](std::size_t f) {
    check_flow(trace, fault_model, static_cast<std::uint32_t>(f), by_flow[f],
               flow_violations[f]);
  };
  const std::size_t num_threads =
      options.num_threads == 0 ? util::ThreadPool::default_num_threads()
                               : options.num_threads;
  if (num_threads <= 1 || n <= 1) {
    for (std::size_t f = 0; f < n; ++f) check_one(f);
  } else {
    util::ThreadPool pool(std::min<std::size_t>(num_threads, n));
    pool.for_each_index(n, check_one);
  }
  for (auto& fv : flow_violations)
    for (auto& v : fv) verdict.violations.push_back(std::move(v));

  std::stable_sort(verdict.violations.begin(), verdict.violations.end(),
                   [](const TraceViolation& a, const TraceViolation& b) {
                     return a.event_index < b.event_index;
                   });
  verdict.ok = verdict.violations.empty();
  if (verdict.violations.size() > options.max_violations)
    verdict.violations.resize(options.max_violations);
  return verdict;
}

// --- golden cases ---------------------------------------------------------

std::vector<GoldenTraceSpec> golden_trace_specs() {
  // All seeds derive from trial_seed over a fixed seed0, one "size index"
  // per scheme — regeneration (tools/trace_check --gen) is deterministic.
  constexpr std::uint64_t kSeed0 = 2026;
  std::vector<GoldenTraceSpec> specs;

  {
    GoldenTraceSpec s;
    s.name = "scheme_a";
    s.scheme = SlotScheme::kSchemeA;
    s.params.n = 192;
    s.params.alpha = 0.3;
    s.params.with_bs = false;
    s.params.M = 1.0;
    s.placement = net::BsPlacement::kUniform;
    s.slots = 600;
    s.warmup = 120;
    specs.push_back(s);
  }
  {
    GoldenTraceSpec s;
    s.name = "two_hop";
    s.scheme = SlotScheme::kTwoHop;
    s.params.n = 128;
    s.params.alpha = 0.0;  // full mixing
    s.params.with_bs = false;
    s.params.M = 1.0;
    s.placement = net::BsPlacement::kUniform;
    s.slots = 600;
    s.warmup = 120;
    specs.push_back(s);
  }
  {
    GoldenTraceSpec s;
    s.name = "scheme_b";
    s.scheme = SlotScheme::kSchemeB;
    s.params.n = 256;
    s.params.alpha = 0.35;
    s.params.with_bs = true;
    s.params.K = 0.75;
    s.params.M = 1.0;
    s.params.phi = 0.0;
    s.placement = net::BsPlacement::kClusteredMatched;
    s.slots = 800;
    s.warmup = 160;
    specs.push_back(s);
  }
  {
    GoldenTraceSpec s;
    s.name = "scheme_c";
    s.scheme = SlotScheme::kSchemeC;
    s.params.n = 256;
    s.params.alpha = 0.75;  // trivial regime (see DESIGN.md)
    s.params.with_bs = true;
    s.params.K = 0.6;
    s.params.M = 0.2;
    s.params.R = 0.3;
    s.params.phi = 0.0;
    s.placement = net::BsPlacement::kClusterGrid;
    s.slots = 800;
    s.warmup = 160;
    specs.push_back(s);
  }

  for (std::size_t i = 0; i < specs.size(); ++i) {
    specs[i].net_seed = trial_seed(kSeed0, i, 0);
    specs[i].traffic_seed = trial_seed(kSeed0, i, 1);
    specs[i].sim_seed = trial_seed(kSeed0, i, 2);
  }
  return specs;
}

Trace capture_trace(const GoldenTraceSpec& spec) {
  const auto net =
      net::Network::build(spec.params, mobility::ShapeKind::kUniformDisk,
                          spec.placement, spec.net_seed);
  rng::Xoshiro256 g(spec.traffic_seed);
  const auto dest = net::permutation_traffic(spec.params.n, g);
  Trace trace;
  SlotSimOptions opt;
  opt.scheme = spec.scheme;
  opt.slots = spec.slots;
  opt.warmup = spec.warmup;
  opt.seed = spec.sim_seed;
  opt.trace = &trace;
  run_slot_sim(net, dest, opt);
  return trace;
}

}  // namespace manetcap::sim
