#include "sim/sweep.h"

#include <cmath>

#include "analysis/stats.h"
#include "util/check.h"

namespace manetcap::sim {

std::vector<std::size_t> geometric_sizes(std::size_t n0, double ratio,
                                         std::size_t count) {
  MANETCAP_CHECK(n0 >= 2);
  MANETCAP_CHECK(ratio > 1.0);
  MANETCAP_CHECK(count >= 1);
  std::vector<std::size_t> sizes;
  sizes.reserve(count);
  double v = static_cast<double>(n0);
  for (std::size_t i = 0; i < count; ++i) {
    sizes.push_back(static_cast<std::size_t>(std::llround(v)));
    v *= ratio;
  }
  return sizes;
}

SweepResult run_sweep(const net::ScalingParams& base,
                      const std::vector<std::size_t>& sizes,
                      std::size_t trials, const Evaluator& eval,
                      std::uint64_t seed0) {
  MANETCAP_CHECK(!sizes.empty());
  MANETCAP_CHECK(trials >= 1);

  SweepResult result;
  std::vector<double> xs, ys;
  bool all_positive = true;

  for (std::size_t si = 0; si < sizes.size(); ++si) {
    net::ScalingParams p = base;
    p.n = sizes[si];
    std::vector<double> lambdas;
    lambdas.reserve(trials);
    for (std::size_t t = 0; t < trials; ++t) {
      const std::uint64_t seed =
          seed0 * 0x9e3779b97f4a7c15ULL + si * 1000003ULL + t * 7919ULL + 1;
      lambdas.push_back(eval(p, seed));
    }

    SweepPoint point;
    point.n = p.n;
    point.trials = trials;
    const auto summary = analysis::summarize(lambdas);
    point.lambda_min = summary.min;
    point.lambda_max = summary.max;
    if (summary.min > 0.0) {
      point.lambda_gm = analysis::geometric_mean(lambdas);
      xs.push_back(static_cast<double>(p.n));
      ys.push_back(point.lambda_gm);
    } else {
      point.lambda_gm = 0.0;
      all_positive = false;
    }
    result.points.push_back(point);
  }

  if (all_positive && xs.size() >= 3) {
    result.fit = analysis::fit_power_law(xs, ys);
    result.fit_valid = true;
  }
  return result;
}

}  // namespace manetcap::sim
