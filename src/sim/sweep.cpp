#include "sim/sweep.h"

#include <cmath>

#include "analysis/stats.h"
#include "util/check.h"
#include "util/thread_pool.h"

namespace manetcap::sim {

std::vector<std::size_t> geometric_sizes(std::size_t n0, double ratio,
                                         std::size_t count) {
  MANETCAP_CHECK(n0 >= 2);
  MANETCAP_CHECK(ratio > 1.0);
  MANETCAP_CHECK(count >= 1);
  std::vector<std::size_t> sizes;
  sizes.reserve(count);
  double v = static_cast<double>(n0);
  for (std::size_t i = 0; i < count; ++i) {
    const auto s = static_cast<std::size_t>(std::llround(v));
    // llround is monotone in v, so collapsed points are adjacent; keeping
    // the first occurrence dedupes the whole sequence.
    if (sizes.empty() || sizes.back() != s) sizes.push_back(s);
    v *= ratio;
  }
  return sizes;
}

namespace {

inline std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

std::uint64_t trial_seed(std::uint64_t seed0, std::size_t size_index,
                         std::size_t trial) {
  // Feed each coordinate through its own SplitMix64 round so (seed0, si, t)
  // tuples that differ in any coordinate diverge over the full 64-bit
  // range — unlike a linear combination, where small strides collide.
  std::uint64_t h = splitmix64(seed0);
  h = splitmix64(h ^ static_cast<std::uint64_t>(size_index));
  h = splitmix64(h ^ static_cast<std::uint64_t>(trial));
  return h;
}

std::uint64_t traffic_seed(std::uint64_t seed) {
  return trial_seed(seed, 0, 1);
}

SweepResult run_sweep(const net::ScalingParams& base,
                      const std::vector<std::size_t>& sizes,
                      std::size_t trials, const SweepEvaluator& eval,
                      const SweepOptions& options) {
  MANETCAP_CHECK(!sizes.empty());
  MANETCAP_CHECK(trials >= 1);

  std::size_t num_threads = options.num_threads == 0
                                ? util::ThreadPool::default_num_threads()
                                : options.num_threads;

  // Fan-out: every (size, trial) cell is an independent task writing its
  // own pre-allocated slot (λ and audit registry alike), so the
  // measurement itself carries no ordering. Per-cell registries exist only
  // when the caller asked for the aggregate.
  const bool want_metrics = options.metrics != nullptr;
  const std::size_t cells = sizes.size() * trials;
  std::vector<double> lambdas(cells, 0.0);
  std::vector<Metrics> cell_metrics(want_metrics ? cells : 0);
  auto run_cell = [&](std::size_t cell) {
    const std::size_t si = cell / trials;
    const std::size_t t = cell % trials;
    EvalContext ctx;
    ctx.params = base;
    ctx.params.n = sizes[si];
    ctx.seed = trial_seed(options.seed0, si, t);
    ctx.metrics = want_metrics ? &cell_metrics[cell] : nullptr;
    lambdas[cell] = eval(ctx);
  };
  if (num_threads <= 1 || cells <= 1) {
    for (std::size_t cell = 0; cell < cells; ++cell) run_cell(cell);
  } else {
    // Persistent executor: the shared pool's workers outlive this call, so
    // repeated sweeps (every bench loop, every CLI invocation doing
    // several sweeps) pay no thread create/join churn. num_threads only
    // caps this group's concurrency.
    util::ThreadPool::shared().parallel_for(cells, run_cell, num_threads);
  }

  // Reduction: serial, fixed order — output is bit-identical to the
  // serial path for any thread count.
  if (want_metrics) {
    for (Metrics& m : cell_metrics) options.metrics->absorb(std::move(m));
  }
  SweepResult result;
  std::vector<double> xs, ys;
  bool all_positive = true;
  for (std::size_t si = 0; si < sizes.size(); ++si) {
    const std::vector<double> cell_lambdas(
        lambdas.begin() + static_cast<std::ptrdiff_t>(si * trials),
        lambdas.begin() + static_cast<std::ptrdiff_t>((si + 1) * trials));
    SweepPoint point;
    point.n = sizes[si];
    point.trials = trials;
    const auto summary = analysis::summarize(cell_lambdas);
    point.lambda_min = summary.min;
    point.lambda_max = summary.max;
    if (summary.min > 0.0) {
      point.lambda_gm = analysis::geometric_mean(cell_lambdas);
      xs.push_back(static_cast<double>(point.n));
      ys.push_back(point.lambda_gm);
    } else {
      point.lambda_gm = 0.0;
      all_positive = false;
    }
    result.points.push_back(point);
  }

  if (all_positive && xs.size() >= 3) {
    result.fit = analysis::fit_power_law(xs, ys);
    result.fit_valid = true;
  }
  return result;
}

}  // namespace manetcap::sim
