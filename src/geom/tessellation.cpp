#include "geom/tessellation.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace manetcap::geom {

SquareTessellation::SquareTessellation(int cells_per_side)
    : g_(cells_per_side) {
  MANETCAP_CHECK_MSG(cells_per_side >= 1,
                     "tessellation needs >= 1 cell per side, got "
                         << cells_per_side);
}

SquareTessellation SquareTessellation::with_min_cell_area(
    double min_cell_area) {
  MANETCAP_CHECK_MSG(min_cell_area > 0.0, "cell area must be positive");
  // Largest g with (1/g)² >= min_cell_area, i.e. g <= 1/sqrt(area).
  int g = static_cast<int>(std::floor(1.0 / std::sqrt(min_cell_area)));
  return SquareTessellation(std::max(1, g));
}

SquareTessellation SquareTessellation::with_cell_side(double side) {
  MANETCAP_CHECK_MSG(side > 0.0, "cell side must be positive");
  int g = static_cast<int>(std::floor(1.0 / side));
  return SquareTessellation(std::max(1, g));
}

Cell SquareTessellation::cell_of(Point p) const {
  MANETCAP_DCHECK(p.x >= 0.0 && p.x < 1.0 && p.y >= 0.0 && p.y < 1.0);
  auto clamp = [this](double v) {
    int i = static_cast<int>(v * g_);
    return std::min(i, g_ - 1);  // guards v*g_ rounding up to g_
  };
  return {clamp(p.y), clamp(p.x)};
}

int SquareTessellation::index_of(Cell c) const {
  MANETCAP_DCHECK(c.row >= 0 && c.row < g_ && c.col >= 0 && c.col < g_);
  return c.row * g_ + c.col;
}

Cell SquareTessellation::cell_at(int index) const {
  MANETCAP_DCHECK(index >= 0 && index < num_cells());
  return {index / g_, index % g_};
}

Point SquareTessellation::center(Cell c) const {
  return {(c.col + 0.5) / g_, (c.row + 0.5) / g_};
}

Cell SquareTessellation::wrap(std::int64_t row, std::int64_t col) const {
  auto m = [this](std::int64_t v) {
    std::int64_t w = v % g_;
    if (w < 0) w += g_;
    return static_cast<std::int32_t>(w);
  };
  return {m(row), m(col)};
}

std::vector<Cell> SquareTessellation::neighbors4(Cell c) const {
  return {wrap(c.row - 1, c.col), wrap(c.row + 1, c.col),
          wrap(c.row, c.col - 1), wrap(c.row, c.col + 1)};
}

namespace {
// Signed shortest step count from a to b on a ring of size g, in
// [-g/2, g/2]; ties broken toward the positive direction.
int ring_delta(int a, int b, int g) {
  int d = (b - a) % g;
  if (d < 0) d += g;          // d in [0, g)
  if (d > g / 2) d -= g;      // shortest direction
  return d;
}
}  // namespace

int SquareTessellation::hop_distance(Cell a, Cell b) const {
  return std::abs(ring_delta(a.row, b.row, g_)) +
         std::abs(ring_delta(a.col, b.col, g_));
}

std::vector<Cell> SquareTessellation::hv_path(Cell src, Cell dst) const {
  std::vector<Cell> path;
  path.reserve(static_cast<std::size_t>(hop_distance(src, dst)) + 1);
  path.push_back(src);

  // Horizontal leg: move column toward dst.col along the shorter direction.
  int dc = ring_delta(src.col, dst.col, g_);
  int step = dc >= 0 ? 1 : -1;
  Cell cur = src;
  for (int i = 0; i != dc; i += step) {
    cur = wrap(cur.row, cur.col + step);
    path.push_back(cur);
  }
  // Vertical leg.
  int dr = ring_delta(cur.row, dst.row, g_);
  step = dr >= 0 ? 1 : -1;
  for (int i = 0; i != dr; i += step) {
    cur = wrap(cur.row + step, cur.col);
    path.push_back(cur);
  }
  MANETCAP_DCHECK(cur == dst);
  return path;
}

}  // namespace manetcap::geom
