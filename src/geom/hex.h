// Planar hexagonal tessellation used by optimal routing & scheduling
// scheme C (Definition 13): BSs sit at hexagon centers inside each cluster
// and cells are activated in non-interfering TDMA groups.
//
// Clusters are disjoint and small relative to the torus (M − 2R < 0), so the
// hex grid is planar and anchored at the cluster center; no torus wrap.
#pragma once

#include <cstdint>
#include <vector>

#include "geom/point.h"

namespace manetcap::geom {

/// Axial hex coordinate (pointy-top convention).
struct Hex {
  std::int32_t q = 0;
  std::int32_t r = 0;

  friend bool operator==(Hex a, Hex b) { return a.q == b.q && a.r == b.r; }
  friend bool operator!=(Hex a, Hex b) { return !(a == b); }
};

/// A pointy-top hex grid with side length `side`, anchored at a planar
/// origin. Positions are planar displacements (Vec2) from the origin.
class HexGrid {
 public:
  explicit HexGrid(double side);

  double side() const { return side_; }

  /// Area of one hexagonal cell: (3√3/2)·side².
  double cell_area() const;

  /// Hex cell containing the planar offset `p` (cube-rounding).
  Hex cell_of(Vec2 p) const;

  /// Planar center of cell `h`.
  Vec2 center(Hex h) const;

  /// The six adjacent cells.
  std::vector<Hex> neighbors(Hex h) const;

  /// Hex-grid distance (minimum number of cell steps).
  int distance(Hex a, Hex b) const;

  /// All cells whose center lies within `radius` of the origin — the cells
  /// tiling one cluster disk.
  std::vector<Hex> cells_within(double radius) const;

  /// TDMA color in [0, period²): cells sharing a color are ≥ period cells
  /// apart on each axis, hence spatially separated by Θ(period·side) and
  /// non-interfering for a suitable constant period (Theorem 9 relies on
  /// bounded-degree vertex coloring; this is the standard explicit one).
  int tdma_color(Hex h, int period) const;

 private:
  double side_;
};

}  // namespace manetcap::geom
