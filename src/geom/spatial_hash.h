// Uniform-grid spatial index over the unit torus for O(1)-expected disk
// queries — the workhorse behind protocol-model interference checks and
// the S* scheduler's neighbor scans.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "geom/point.h"

namespace manetcap::geom {

/// Buckets point ids into a g×g grid (g chosen from a query-radius hint) and
/// answers "all ids within distance r of X" by scanning the covering
/// buckets. Rebuild per time slot; queries never allocate.
class SpatialHash {
 public:
  /// Sentinel returned by nearest() when no candidate exists (empty index
  /// or everything excluded). Never a valid id — ids are indices into the
  /// built point set, which holds fewer than 2³²−1 points. Callers must
  /// check for it; it is deliberately NOT indexable (the previous contract
  /// returned 0 or size(), both of which a caller could dereference).
  static constexpr std::uint32_t kNone = 0xffffffffu;

  /// `radius_hint` sizes the buckets (bucket side ≈ radius_hint); queries
  /// with radius near the hint touch a constant number of buckets.
  explicit SpatialHash(double radius_hint, std::size_t expected_points = 0);

  /// Replaces the indexed set with `points`; ids are indices into `points`.
  void build(const std::vector<Point>& points);

  std::size_t size() const { return points_.size(); }
  const Point& point(std::uint32_t id) const { return points_[id]; }

  /// Invokes `fn(id)` for every indexed point with torus_dist(X, point) ≤ r.
  /// The center itself is reported if indexed (callers filter self-matches).
  void for_each_in_disk(Point center, double r,
                        const std::function<void(std::uint32_t)>& fn) const;

  /// Collects ids within distance r of `center` (convenience wrapper).
  std::vector<std::uint32_t> query_disk(Point center, double r) const;

  /// Number of indexed points within distance r of `center`.
  std::size_t count_in_disk(Point center, double r) const;

  /// Id of the nearest indexed point to `center` excluding `exclude`
  /// (pass kNone to exclude nothing). Returns kNone when the index is
  /// empty or every indexed point is excluded.
  std::uint32_t nearest(Point center, std::uint32_t exclude = kNone) const;

 private:
  int bucket_coord(double v) const;
  int bucket_index(int bx, int by) const;

  int g_;  // buckets per side
  std::vector<Point> points_;
  // CSR layout: bucket_start_[b]..bucket_start_[b+1] indexes into ids_.
  std::vector<std::uint32_t> bucket_start_;
  std::vector<std::uint32_t> ids_;
};

}  // namespace manetcap::geom
