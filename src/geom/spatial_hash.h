// Uniform-grid spatial index over the unit torus for O(1)-expected disk
// queries — the workhorse behind protocol-model interference checks and
// the S* scheduler's neighbor scans.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <functional>
#include <vector>

#include "geom/point.h"
#include "util/check.h"

namespace manetcap::geom {

/// Buckets point ids into a g×g grid (g chosen from a query-radius hint) and
/// answers "all ids within distance r of X" by scanning the covering
/// buckets. Queries never allocate.
///
/// Two maintenance modes share one query path:
///  * snapshot — build() counting-sorts every point into a CSR layout
///    (contiguous per-bucket id runs, ids ascending within a bucket);
///  * incremental — the first move() converts the CSR runs into intrusive
///    per-bucket lists; further moves rebucket only ids that crossed a
///    bucket boundary (O(1) each). Under restricted mobility most nodes
///    stay inside their bucket per slot, so a full per-slot rebuild
///    becomes a handful of pointer swaps.
/// The conversion reproduces the CSR iteration order exactly; after a
/// move, within-bucket order for moved ids is unspecified (disk queries
/// whose callers are order-insensitive — S* lone-neighbor counting — are
/// unaffected; tie-breaking in nearest() may differ from a fresh build()).
class SpatialHash {
 public:
  /// Sentinel returned by nearest() when no candidate exists (empty index
  /// or everything excluded). Never a valid id — ids are indices into the
  /// built point set, which holds fewer than 2³²−1 points. Callers must
  /// check for it; it is deliberately NOT indexable (the previous contract
  /// returned 0 or size(), both of which a caller could dereference).
  static constexpr std::uint32_t kNone = 0xffffffffu;

  /// Hard cap on buckets per side. All bucket arithmetic is carried in
  /// std::int64_t and the constructor clamps to this bound *before* any
  /// narrowing cast — a radius_hint of 1e-12 used to push 1/hint through
  /// an int cast (UB) before the old clamp could run.
  static constexpr std::int64_t kMaxGridSide = 4096;

  /// `radius_hint` sizes the buckets (bucket side ≈ radius_hint); queries
  /// with radius near the hint touch a constant number of buckets.
  explicit SpatialHash(double radius_hint, std::size_t expected_points = 0);

  /// Replaces the indexed set with `points`; ids are indices into `points`.
  /// Always (re)enters snapshot mode.
  void build(const std::vector<Point>& points);

  /// Re-registers point `id` at `new_pos`. `old_pos` must be the position
  /// the id is currently indexed under (checked in debug builds); the id is
  /// rebucketed only when the two positions fall in different buckets.
  /// The first call converts the index to incremental mode.
  void move(std::uint32_t id, Point old_pos, Point new_pos);

  std::size_t size() const { return points_.size(); }
  const Point& point(std::uint32_t id) const { return points_[id]; }

  /// Invokes `fn(id)` for every indexed point with torus_dist(X, point) ≤ r.
  /// The center itself is reported if indexed (callers filter self-matches).
  /// Template form: the callback inlines, so the hot S* scan pays no
  /// std::function dispatch per candidate.
  template <class Fn>
  void visit_disk(Point center, double r, Fn&& fn) const {
    MANETCAP_CHECK(r >= 0.0);
    const double r2 = r * r;
    // Covering bucket range (torus-wrapped). A center in bucket cx has
    // x < (cx+1)/g, so every point within distance r lies within
    // ceil(r·g) buckets per axis — the covering needs no extra ring.
    // When r spans the whole torus the range collapses to a full sweep.
    // int64 throughout: r·g_ can exceed INT_MAX for a silly radius, and
    // the flat index by·g+bx must never narrow.
    std::int64_t span = r * static_cast<double>(g_) >=
                                static_cast<double>(g_ / 2 + 1)
                            ? g_ / 2 + 1
                            : static_cast<std::int64_t>(
                                  std::ceil(r * static_cast<double>(g_)));
    const std::int64_t cx = bucket_coord(center.x);
    const std::int64_t cy = bucket_coord(center.y);

    // Avoid visiting a wrapped bucket twice when 2·span+1 ≥ g_.
    const std::int64_t lo = -span,
                       hi = (2 * span + 1 >= g_) ? g_ - 1 - span : span;
    auto wrap = [this](std::int64_t v) {
      std::int64_t w = v % g_;
      return w < 0 ? w + g_ : w;
    };
    for (std::int64_t dy = lo; dy <= hi; ++dy) {
      const std::size_t row = static_cast<std::size_t>(wrap(cy + dy) * g_);
      for (std::int64_t dx = lo; dx <= hi; ++dx) {
        const std::size_t b = row + static_cast<std::size_t>(wrap(cx + dx));
        if (incremental_) {
          for (std::uint32_t id = head_[b]; id != kNone; id = next_[id])
            if (torus_dist2(center, points_[id]) <= r2) fn(id);
        } else {
          for (std::uint32_t k = bucket_start_[b]; k < bucket_start_[b + 1];
               ++k) {
            const std::uint32_t id = ids_[k];
            if (torus_dist2(center, points_[id]) <= r2) fn(id);
          }
        }
      }
    }
  }

  /// Type-erased convenience wrapper over visit_disk.
  void for_each_in_disk(Point center, double r,
                        const std::function<void(std::uint32_t)>& fn) const;

  /// Collects ids within distance r of `center` (convenience wrapper).
  std::vector<std::uint32_t> query_disk(Point center, double r) const;

  /// Number of indexed points within distance r of `center`.
  std::size_t count_in_disk(Point center, double r) const;

  /// Id of the nearest indexed point to `center` excluding `exclude`
  /// (pass kNone to exclude nothing). Returns kNone when the index is
  /// empty or every indexed point is excluded.
  std::uint32_t nearest(Point center, std::uint32_t exclude = kNone) const;

  /// Buckets per side — the stripe-sharded slot loop partitions work by
  /// contiguous ranges of bucket rows.
  std::int64_t grid_side() const { return g_; }

  /// Bucket row (y band) a point falls in: [0, grid_side()).
  std::int64_t bucket_row_of(Point p) const { return bucket_coord(p.y); }

  /// Invokes `fn(id)` exactly once for every point indexed in bucket rows
  /// [row_begin, row_end). Rows partition the indexed set, so visiting
  /// disjoint row ranges from different threads touches disjoint ids;
  /// within-bucket order is the usual (unspecified after moves) one.
  template <class Fn>
  void visit_rows(std::int64_t row_begin, std::int64_t row_end,
                  Fn&& fn) const {
    MANETCAP_DCHECK(0 <= row_begin && row_begin <= row_end && row_end <= g_);
    const std::size_t b0 = static_cast<std::size_t>(row_begin * g_);
    const std::size_t b1 = static_cast<std::size_t>(row_end * g_);
    for (std::size_t b = b0; b < b1; ++b) {
      if (incremental_) {
        for (std::uint32_t id = head_[b]; id != kNone; id = next_[id]) fn(id);
      } else {
        for (std::uint32_t k = bucket_start_[b]; k < bucket_start_[b + 1];
             ++k)
          fn(ids_[k]);
      }
    }
  }

  /// Forces the conversion move() would perform on first use. The sharded
  /// move phase calls this up front so the (serial) conversion never runs
  /// inside a parallel section.
  void ensure_incremental() {
    if (!incremental_) to_incremental();
  }

  /// Resident bytes of the index (point copies + bucket structures) — one
  /// term of the simulator's bytes-per-MS scale metric.
  std::uint64_t memory_bytes() const {
    return points_.capacity() * sizeof(Point) +
           (bucket_start_.capacity() + ids_.capacity() + head_.capacity() +
            next_.capacity() + prev_.capacity()) *
               sizeof(std::uint32_t);
  }

 private:
  std::int64_t bucket_coord(double v) const {
    const std::int64_t c = static_cast<std::int64_t>(v * static_cast<double>(g_));
    return std::min(std::max<std::int64_t>(c, 0), g_ - 1);
  }
  std::size_t bucket_index(std::int64_t bx, std::int64_t by) const {
    auto m = [this](std::int64_t v) {
      std::int64_t w = v % g_;
      return w < 0 ? w + g_ : w;
    };
    return static_cast<std::size_t>(m(by) * g_ + m(bx));
  }
  std::size_t bucket_of(Point p) const {
    return bucket_index(bucket_coord(p.x), bucket_coord(p.y));
  }

  /// Converts the CSR runs into per-bucket intrusive lists, preserving the
  /// within-bucket iteration order at the moment of conversion.
  void to_incremental();

  template <class Fn>
  void visit_bucket(std::int64_t bx, std::int64_t by, Fn&& fn) const {
    const std::size_t b = bucket_index(bx, by);
    if (incremental_) {
      for (std::uint32_t id = head_[b]; id != kNone; id = next_[id]) fn(id);
    } else {
      for (std::uint32_t k = bucket_start_[b]; k < bucket_start_[b + 1]; ++k)
        fn(ids_[k]);
    }
  }

  std::int64_t g_;  // buckets per side, in [1, kMaxGridSide]
  std::vector<Point> points_;
  // Snapshot (CSR) layout: bucket_start_[b]..bucket_start_[b+1] indexes
  // into ids_. Valid while !incremental_.
  std::vector<std::uint32_t> bucket_start_;
  std::vector<std::uint32_t> ids_;
  // Incremental layout: doubly-linked id list per bucket. Valid while
  // incremental_.
  bool incremental_ = false;
  std::vector<std::uint32_t> head_;  // per bucket, kNone-terminated
  std::vector<std::uint32_t> next_;  // per id
  std::vector<std::uint32_t> prev_;  // per id
};

}  // namespace manetcap::geom
