#include "geom/hex.h"

#include <cmath>

#include "util/check.h"

namespace manetcap::geom {

namespace {
constexpr double kSqrt3 = 1.7320508075688772;
}

HexGrid::HexGrid(double side) : side_(side) {
  MANETCAP_CHECK_MSG(side > 0.0, "hex side must be positive");
}

double HexGrid::cell_area() const { return 1.5 * kSqrt3 * side_ * side_; }

Vec2 HexGrid::center(Hex h) const {
  // Pointy-top axial to planar: x = s·√3·(q + r/2), y = s·(3/2)·r.
  return {side_ * kSqrt3 * (h.q + h.r / 2.0), side_ * 1.5 * h.r};
}

Hex HexGrid::cell_of(Vec2 p) const {
  // Inverse of center(), then cube-round to the nearest hex.
  double qf = (kSqrt3 / 3.0 * p.x - 1.0 / 3.0 * p.y) / side_;
  double rf = (2.0 / 3.0 * p.y) / side_;
  double sf = -qf - rf;

  double q = std::round(qf), r = std::round(rf), s = std::round(sf);
  double dq = std::abs(q - qf), dr = std::abs(r - rf), ds = std::abs(s - sf);
  if (dq > dr && dq > ds)
    q = -r - s;
  else if (dr > ds)
    r = -q - s;
  return {static_cast<std::int32_t>(q), static_cast<std::int32_t>(r)};
}

std::vector<Hex> HexGrid::neighbors(Hex h) const {
  return {{h.q + 1, h.r},     {h.q - 1, h.r},     {h.q, h.r + 1},
          {h.q, h.r - 1},     {h.q + 1, h.r - 1}, {h.q - 1, h.r + 1}};
}

int HexGrid::distance(Hex a, Hex b) const {
  int dq = a.q - b.q;
  int dr = a.r - b.r;
  int ds = -dq - dr;
  return (std::abs(dq) + std::abs(dr) + std::abs(ds)) / 2;
}

std::vector<Hex> HexGrid::cells_within(double radius) const {
  MANETCAP_CHECK(radius >= 0.0);
  // Any cell center within `radius` has axial coordinates bounded by
  // radius / (minimal center spacing) + 1.
  int bound = static_cast<int>(std::ceil(radius / (kSqrt3 * side_))) + 2;
  std::vector<Hex> cells;
  for (int q = -bound; q <= bound; ++q) {
    for (int r = -bound; r <= bound; ++r) {
      Hex h{q, r};
      if (center(h).norm() <= radius) cells.push_back(h);
    }
  }
  return cells;
}

int HexGrid::tdma_color(Hex h, int period) const {
  MANETCAP_CHECK_MSG(period >= 1, "TDMA period must be >= 1");
  auto mod = [period](int v) {
    int w = v % period;
    return w < 0 ? w + period : w;
  };
  return mod(h.q) + period * mod(h.r);
}

}  // namespace manetcap::geom
