// Points and vectors on the unit torus O = [0,1)², the paper's normalized
// network extension (Definition 1). All distances are wrap-around distances.
#pragma once

#include <cmath>

#include "util/check.h"

namespace manetcap::geom {

/// A free 2-D vector (displacement); not wrapped.
struct Vec2 {
  double x = 0.0;
  double y = 0.0;

  constexpr Vec2 operator+(Vec2 o) const { return {x + o.x, y + o.y}; }
  constexpr Vec2 operator-(Vec2 o) const { return {x - o.x, y - o.y}; }
  constexpr Vec2 operator*(double s) const { return {x * s, y * s}; }
  constexpr Vec2 operator/(double s) const { return {x / s, y / s}; }

  constexpr double dot(Vec2 o) const { return x * o.x + y * o.y; }
  double norm() const { return std::sqrt(x * x + y * y); }
  constexpr double norm2() const { return x * x + y * y; }
};

/// Wraps a scalar coordinate into [0, 1).
inline double wrap01(double v) {
  double w = v - std::floor(v);
  // floor(-1e-18) == -0 can leave w == 1.0 after rounding; normalize.
  return w >= 1.0 ? w - 1.0 : w;
}

/// A point on the unit torus; coordinates always in [0, 1).
struct Point {
  double x = 0.0;
  double y = 0.0;

  /// Constructs from arbitrary coordinates, wrapping into the torus.
  static Point wrapped(double x, double y) { return {wrap01(x), wrap01(y)}; }

  /// Translates by a displacement, wrapping around the torus edges.
  Point displaced(Vec2 d) const { return wrapped(x + d.x, y + d.y); }
};

/// Shortest signed displacement per axis on the torus, each in [-1/2, 1/2).
inline Vec2 torus_delta(Point from, Point to) {
  auto axis = [](double a, double b) {
    double d = b - a;
    if (d >= 0.5) d -= 1.0;
    if (d < -0.5) d += 1.0;
    return d;
  };
  return {axis(from.x, to.x), axis(from.y, to.y)};
}

/// Wrap-around Euclidean distance ‖a−b‖ on the torus (max value √2/2).
inline double torus_dist(Point a, Point b) { return torus_delta(a, b).norm(); }

/// Squared wrap-around distance (avoids the sqrt in hot loops).
inline double torus_dist2(Point a, Point b) {
  return torus_delta(a, b).norm2();
}

}  // namespace manetcap::geom
