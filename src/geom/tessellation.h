// Regular square tessellation of the unit torus.
//
// Used by the paper in two sizes: squarelets of area Θ(1/f²(n)) for optimal
// routing scheme A (Definition 11) and constant-area squarelets for scheme B
// (Definition 12), plus the (16+β)γ(n)-area tessellations in the proofs of
// Lemma 1 / Lemma 9.
#pragma once

#include <cstdint>
#include <vector>

#include "geom/point.h"

namespace manetcap::geom {

/// Grid cell identified by (row, col); rows index y, columns index x.
struct Cell {
  std::int32_t row = 0;
  std::int32_t col = 0;

  friend bool operator==(Cell a, Cell b) {
    return a.row == b.row && a.col == b.col;
  }
  friend bool operator!=(Cell a, Cell b) { return !(a == b); }
};

/// A g×g square tessellation of the unit torus; all neighbor and path
/// operations wrap around the edges.
class SquareTessellation {
 public:
  /// Creates a grid with `cells_per_side` cells per axis (≥ 1).
  explicit SquareTessellation(int cells_per_side);

  /// Largest grid whose cell area is still ≥ `min_cell_area`
  /// (the proofs choose |A| = (16+β)γ(n); callers pass that value).
  static SquareTessellation with_min_cell_area(double min_cell_area);

  /// Grid whose cell side is closest to `side` from below (cell side ≥ side
  /// would shrink the grid; scheme A wants cell side = Θ(1/f)).
  static SquareTessellation with_cell_side(double side);

  int cells_per_side() const { return g_; }
  int num_cells() const { return g_ * g_; }
  double cell_side() const { return 1.0 / g_; }
  double cell_area() const { return 1.0 / (static_cast<double>(g_) * g_); }

  /// Cell containing torus point `p`.
  Cell cell_of(Point p) const;

  /// Linearized index in [0, g²).
  int index_of(Cell c) const;
  Cell cell_at(int index) const;

  /// Center point of a cell.
  Point center(Cell c) const;

  /// Wraps arbitrary (row, col) onto the torus grid.
  Cell wrap(std::int64_t row, std::int64_t col) const;

  /// The four edge-adjacent cells (up, down, left, right), wrapped.
  std::vector<Cell> neighbors4(Cell c) const;

  /// Torus Manhattan hop distance between cells (shortest wrap per axis).
  int hop_distance(Cell a, Cell b) const;

  /// Horizontal-then-vertical cell path from `src` to `dst` inclusive,
  /// taking the shorter wrap direction on each axis — the forwarding path
  /// of optimal routing scheme A.
  std::vector<Cell> hv_path(Cell src, Cell dst) const;

 private:
  int g_;
};

}  // namespace manetcap::geom
