#include "geom/spatial_hash.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/check.h"

namespace manetcap::geom {

SpatialHash::SpatialHash(double radius_hint, std::size_t expected_points) {
  MANETCAP_CHECK_MSG(radius_hint > 0.0, "radius hint must be positive");
  // Bucket side ≈ radius_hint, capped so the bucket table stays O(points).
  // The clamp happens in the double domain: 1/hint can exceed INT64_MAX
  // for a denormal hint, so casting before clamping would be UB (and on
  // common ABIs produced a negative g, i.e. a garbage grid).
  const double inv = std::floor(1.0 / radius_hint);
  std::int64_t g = inv >= static_cast<double>(kMaxGridSide)
                       ? kMaxGridSide
                       : static_cast<std::int64_t>(inv);
  g = std::max<std::int64_t>(1, g);
  if (expected_points > 0) {
    // √points·2 ≤ 2^33 for any size_t input — int64 holds it exactly.
    const std::int64_t cap =
        2 * static_cast<std::int64_t>(
                std::ceil(std::sqrt(static_cast<double>(expected_points))));
    g = std::min(g, std::max<std::int64_t>(1, cap));
  }
  g_ = g;
  MANETCAP_CHECK_MSG(g_ >= 1 && g_ <= kMaxGridSide,
                     "SpatialHash: grid side " << g_ << " outside [1, "
                                               << kMaxGridSide << "]");
}

void SpatialHash::build(const std::vector<Point>& points) {
  points_ = points;
  incremental_ = false;
  MANETCAP_CHECK_MSG(points.size() < kNone,
                     "SpatialHash: point count must stay below the id "
                     "sentinel (2^32-1)");
  const std::size_t nb = static_cast<std::size_t>(g_ * g_);
  bucket_start_.assign(nb + 1, 0);
  ids_.resize(points_.size());

  // Counting sort into buckets (CSR). The sort is stable, so ids within a
  // bucket come out ascending — the iteration order to_incremental() and
  // every query preserves.
  for (const Point& p : points_) ++bucket_start_[bucket_of(p) + 1];
  for (std::size_t b = 0; b < nb; ++b) bucket_start_[b + 1] += bucket_start_[b];
  std::vector<std::uint32_t> cursor(bucket_start_.begin(),
                                    bucket_start_.end() - 1);
  for (std::uint32_t id = 0; id < points_.size(); ++id)
    ids_[cursor[bucket_of(points_[id])]++] = id;
}

void SpatialHash::to_incremental() {
  const std::size_t nb = static_cast<std::size_t>(g_ * g_);
  head_.assign(nb, kNone);
  next_.assign(points_.size(), kNone);
  prev_.assign(points_.size(), kNone);
  // Walk each CSR run back-to-front, pushing to the bucket head: the chain
  // then iterates in exactly the CSR (ascending-id) order.
  for (std::size_t b = 0; b < nb; ++b) {
    for (std::uint32_t k = bucket_start_[b + 1]; k-- > bucket_start_[b];) {
      const std::uint32_t id = ids_[k];
      next_[id] = head_[b];
      prev_[id] = kNone;
      if (head_[b] != kNone) prev_[head_[b]] = id;
      head_[b] = id;
    }
  }
  incremental_ = true;
}

void SpatialHash::move(std::uint32_t id, Point old_pos, Point new_pos) {
  MANETCAP_DCHECK(id < points_.size());
  if (!incremental_) to_incremental();
  const std::size_t ob = bucket_of(old_pos);
  MANETCAP_DCHECK(ob == bucket_of(points_[id]));
  points_[id] = new_pos;
  const std::size_t nb = bucket_of(new_pos);
  if (ob == nb) return;  // same bucket: position update only

  // Unlink from the old bucket's chain…
  if (prev_[id] != kNone)
    next_[prev_[id]] = next_[id];
  else
    head_[ob] = next_[id];
  if (next_[id] != kNone) prev_[next_[id]] = prev_[id];
  // …and push-front into the new bucket's.
  next_[id] = head_[nb];
  prev_[id] = kNone;
  if (head_[nb] != kNone) prev_[head_[nb]] = id;
  head_[nb] = id;
}

void SpatialHash::for_each_in_disk(
    Point center, double r,
    const std::function<void(std::uint32_t)>& fn) const {
  visit_disk(center, r, fn);
}

std::vector<std::uint32_t> SpatialHash::query_disk(Point center,
                                                   double r) const {
  std::vector<std::uint32_t> out;
  visit_disk(center, r, [&out](std::uint32_t id) { out.push_back(id); });
  return out;
}

std::size_t SpatialHash::count_in_disk(Point center, double r) const {
  std::size_t n = 0;
  visit_disk(center, r, [&n](std::uint32_t) { ++n; });
  return n;
}

std::uint32_t SpatialHash::nearest(Point center, std::uint32_t exclude) const {
  if (points_.empty()) return kNone;
  double best2 = std::numeric_limits<double>::infinity();
  std::uint32_t best = kNone;
  const std::int64_t cx = bucket_coord(center.x);
  const std::int64_t cy = bucket_coord(center.y);
  const double side = 1.0 / static_cast<double>(g_);

  auto visit = [&](std::int64_t bx, std::int64_t by) {
    visit_bucket(bx, by, [&](std::uint32_t id) {
      if (id == exclude) return;
      const double d2 = torus_dist2(center, points_[id]);
      if (d2 < best2) {
        best2 = d2;
        best = id;
      }
    });
  };

  // Expanding square rings of buckets, each bucket visited exactly once
  // (the old radius-doubling search re-scanned every inner bucket on each
  // doubling). Every point in a ring-d bucket is ≥ (d−1)·side away, so
  // once a candidate is closer than that lower bound no further ring can
  // improve on it. Ring g_/2+1 wraps the whole torus (duplicate wrapped
  // buckets in the last rings only cost redundant min() updates).
  const std::int64_t max_ring = g_ / 2 + 1;
  for (std::int64_t ring = 0; ring <= max_ring; ++ring) {
    if (best != kNone) {
      const double lower = static_cast<double>(ring - 1) * side;
      if (lower > 0.0 && lower * lower > best2) break;
    }
    if (ring == 0) {
      visit(cx, cy);
      continue;
    }
    for (std::int64_t dx = -ring; dx <= ring; ++dx) {
      visit(cx + dx, cy - ring);
      visit(cx + dx, cy + ring);
    }
    for (std::int64_t dy = -ring + 1; dy <= ring - 1; ++dy) {
      visit(cx - ring, cy + dy);
      visit(cx + ring, cy + dy);
    }
  }
  return best;
}

}  // namespace manetcap::geom
