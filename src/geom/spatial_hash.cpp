#include "geom/spatial_hash.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/check.h"

namespace manetcap::geom {

SpatialHash::SpatialHash(double radius_hint, std::size_t expected_points) {
  MANETCAP_CHECK_MSG(radius_hint > 0.0, "radius hint must be positive");
  // Bucket side ≈ radius_hint, capped so the bucket table stays O(points).
  int g = static_cast<int>(std::floor(1.0 / radius_hint));
  g = std::max(1, std::min(g, 4096));
  if (expected_points > 0) {
    int cap = static_cast<int>(
        std::ceil(std::sqrt(static_cast<double>(expected_points)))) * 2;
    g = std::min(g, std::max(1, cap));
  }
  g_ = g;
}

void SpatialHash::build(const std::vector<Point>& points) {
  points_ = points;
  const std::size_t nb = static_cast<std::size_t>(g_) * g_;
  bucket_start_.assign(nb + 1, 0);
  ids_.resize(points_.size());

  // Counting sort into buckets (CSR).
  for (const Point& p : points_) {
    int b = bucket_index(bucket_coord(p.x), bucket_coord(p.y));
    ++bucket_start_[b + 1];
  }
  for (std::size_t b = 0; b < nb; ++b) bucket_start_[b + 1] += bucket_start_[b];
  std::vector<std::uint32_t> cursor(bucket_start_.begin(),
                                    bucket_start_.end() - 1);
  for (std::uint32_t id = 0; id < points_.size(); ++id) {
    const Point& p = points_[id];
    int b = bucket_index(bucket_coord(p.x), bucket_coord(p.y));
    ids_[cursor[b]++] = id;
  }
}

int SpatialHash::bucket_coord(double v) const {
  int c = static_cast<int>(v * g_);
  return std::min(c, g_ - 1);
}

int SpatialHash::bucket_index(int bx, int by) const {
  auto m = [this](int v) {
    int w = v % g_;
    return w < 0 ? w + g_ : w;
  };
  return m(by) * g_ + m(bx);
}

void SpatialHash::for_each_in_disk(
    Point center, double r,
    const std::function<void(std::uint32_t)>& fn) const {
  MANETCAP_CHECK(r >= 0.0);
  const double r2 = r * r;
  // Covering bucket range (torus-wrapped). When r spans the whole torus the
  // range collapses to a single full sweep.
  int span = static_cast<int>(std::ceil(r * g_)) + 1;
  span = std::min(span, g_ / 2 + 1);
  const int cx = bucket_coord(center.x);
  const int cy = bucket_coord(center.y);

  // Avoid visiting a wrapped bucket twice when 2·span+1 ≥ g_.
  const int lo = -span, hi = (2 * span + 1 >= g_) ? g_ - 1 - span : span;
  for (int dy = lo; dy <= hi; ++dy) {
    for (int dx = lo; dx <= hi; ++dx) {
      int b = bucket_index(cx + dx, cy + dy);
      for (std::uint32_t k = bucket_start_[b]; k < bucket_start_[b + 1]; ++k) {
        std::uint32_t id = ids_[k];
        if (torus_dist2(center, points_[id]) <= r2) fn(id);
      }
    }
  }
}

std::vector<std::uint32_t> SpatialHash::query_disk(Point center,
                                                   double r) const {
  std::vector<std::uint32_t> out;
  for_each_in_disk(center, r, [&out](std::uint32_t id) { out.push_back(id); });
  return out;
}

std::size_t SpatialHash::count_in_disk(Point center, double r) const {
  std::size_t n = 0;
  for_each_in_disk(center, r, [&n](std::uint32_t) { ++n; });
  return n;
}

std::uint32_t SpatialHash::nearest(Point center, std::uint32_t exclude) const {
  if (points_.empty()) return kNone;
  double best2 = std::numeric_limits<double>::infinity();
  std::uint32_t best = kNone;
  const int cx = bucket_coord(center.x);
  const int cy = bucket_coord(center.y);
  const double side = 1.0 / g_;

  auto visit = [&](int bx, int by) {
    const int b = bucket_index(bx, by);
    for (std::uint32_t k = bucket_start_[b]; k < bucket_start_[b + 1]; ++k) {
      const std::uint32_t id = ids_[k];
      if (id == exclude) continue;
      const double d2 = torus_dist2(center, points_[id]);
      if (d2 < best2) {
        best2 = d2;
        best = id;
      }
    }
  };

  // Expanding square rings of buckets, each bucket visited exactly once
  // (the old radius-doubling search re-scanned every inner bucket on each
  // doubling). Every point in a ring-d bucket is ≥ (d−1)·side away, so
  // once a candidate is closer than that lower bound no further ring can
  // improve on it. Ring g_/2+1 wraps the whole torus (duplicate wrapped
  // buckets in the last rings only cost redundant min() updates).
  const int max_ring = g_ / 2 + 1;
  for (int ring = 0; ring <= max_ring; ++ring) {
    if (best != kNone) {
      const double lower = static_cast<double>(ring - 1) * side;
      if (lower > 0.0 && lower * lower > best2) break;
    }
    if (ring == 0) {
      visit(cx, cy);
      continue;
    }
    for (int dx = -ring; dx <= ring; ++dx) {
      visit(cx + dx, cy - ring);
      visit(cx + dx, cy + ring);
    }
    for (int dy = -ring + 1; dy <= ring - 1; ++dy) {
      visit(cx - ring, cy + dy);
      visit(cx + ring, cy + dy);
    }
  }
  return best;
}

}  // namespace manetcap::geom
