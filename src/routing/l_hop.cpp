#include "routing/l_hop.h"

#include <algorithm>
#include <limits>

#include "geom/tessellation.h"
#include "util/check.h"

namespace manetcap::routing {

LMaxHop::LMaxHop(int max_hops, double adhoc_share)
    : max_hops_(max_hops), adhoc_share_(adhoc_share) {
  MANETCAP_CHECK(max_hops >= 0);
  MANETCAP_CHECK(adhoc_share > 0.0 && adhoc_share < 1.0);
}

LMaxHopResult LMaxHop::evaluate(const net::Network& net,
                                const std::vector<std::uint32_t>& dest) const {
  const std::size_t n = net.num_ms();
  MANETCAP_CHECK(dest.size() == n);
  MANETCAP_CHECK_MSG(net.num_bs() >= 1, "L-max-hop needs base stations");

  LMaxHopResult res;

  // Classify flows by squarelet hop distance on the scheme A tessellation.
  const double side = 0.8 * net.mobility_radius();
  geom::SquareTessellation tess =
      geom::SquareTessellation::with_cell_side(std::min(side, 1.0));
  std::vector<bool> short_flow(n, false), long_flow(n, false);
  if (tess.cells_per_side() < SchemeA::kMinGrid) {
    // No multihop fabric: everything rides the infrastructure.
    res.adhoc_degenerate = true;
    long_flow.assign(n, true);
    res.long_flows = n;
  } else {
    for (std::uint32_t s = 0; s < n; ++s) {
      const int hops =
          tess.hop_distance(tess.cell_of(net.ms_home()[s]),
                            tess.cell_of(net.ms_home()[dest[s]]));
      if (hops <= max_hops_) {
        short_flow[s] = true;
        ++res.short_flows;
      } else {
        long_flow[s] = true;
        ++res.long_flows;
      }
    }
  }

  // Evaluate each subsystem on its flow class with its bandwidth share.
  double lam_a = std::numeric_limits<double>::infinity();
  double lam_a_sym = std::numeric_limits<double>::infinity();
  if (res.short_flows > 0) {
    SchemeA a;
    const auto ra = a.evaluate(net, dest, &short_flow, adhoc_share_);
    lam_a = ra.degenerate ? 0.0 : ra.throughput.lambda;
    lam_a_sym = ra.degenerate ? 0.0 : ra.lambda_symmetric;
  }
  double lam_b = std::numeric_limits<double>::infinity();
  double lam_b_sym = std::numeric_limits<double>::infinity();
  if (res.long_flows > 0) {
    SchemeB b;
    const auto rb = b.evaluate(net, dest, &long_flow, 1.0 - adhoc_share_);
    lam_b = rb.throughput.lambda;
    lam_b_sym = rb.lambda_symmetric;
  }

  res.lambda_adhoc_class = std::isfinite(lam_a_sym) ? lam_a_sym : 0.0;
  res.lambda_infra_class = std::isfinite(lam_b_sym) ? lam_b_sym : 0.0;
  res.lambda = std::min(lam_a, lam_b);
  res.lambda_symmetric = std::min(lam_a_sym, lam_b_sym);
  if (!std::isfinite(res.lambda)) res.lambda = 0.0;  // no flows at all
  if (!std::isfinite(res.lambda_symmetric)) res.lambda_symmetric = 0.0;
  return res;
}

}  // namespace manetcap::routing
