// Optimal routing scheme A (Definition 11) — pure ad hoc multihop over
// mobility: squarelets of area Θ(1/f²), horizontal-then-vertical forwarding
// through random relays in contiguous squarelets. Achieves Θ(1/f(n)) in the
// uniformly dense regime (Lemma 5 / Theorem 3).
//
// Fluid evaluation: inter-squarelet wireless capacity is the sum of S* link
// capacities μ(i,j) over home-point pairs in adjacent squarelets; loads come
// from routing every permutation flow along its H-V squarelet path. When the
// mobility disk covers a constant fraction of the torus (f(n) = Θ(1), fewer
// than kMinGrid cells fit) scheme A degenerates into two-hop relay and the
// caller should use TwoHopRelay instead; evaluate() reports that via
// `degenerate`.
#pragma once

#include <cstdint>
#include <vector>

#include "flow/constraints.h"
#include "net/network.h"
#include "routing/rate_structure.h"

namespace manetcap::routing {

struct SchemeAResult {
  flow::ThroughputResult throughput;
  /// Typical-resource capacity: mean inter-squarelet capacity over mean
  /// load (plus the median endpoint airtime), instead of the strict
  /// worst-cell minimum. Converges to the Θ(1/f) law without the
  /// extreme-value bias of finite-n minima; within a constant of a
  /// feasible rate w.h.p. (cell occupancies concentrate, Lemma 1).
  double lambda_symmetric = 0.0;
  bool degenerate = false;      // grid too small for multihop forwarding
  int grid_side = 0;            // squarelets per side
  double mean_hops = 0.0;       // average H-V path length
  double min_intercell_capacity = 0.0;
  double max_intercell_load = 0.0;  // at λ = 1
};

class SchemeA {
 public:
  /// `cell_side_factor` scales the squarelet side relative to the mobility
  /// radius D/f; must keep adjacent-cell home-points within the 2D/f
  /// contact range (the default 0.8 gives worst-case √5·0.8 < 2).
  explicit SchemeA(double cell_side_factor = 0.8);

  /// Fluid per-node capacity of scheme A for permutation traffic `dest`.
  /// `include_flow` (optional, size n) restricts the evaluation to a
  /// subset of flows — hybrid allocations (L-max-hop, scheme A ∥ B) route
  /// only part of the traffic here. `bandwidth_share` scales the wireless
  /// capacities when the channel is split between coexisting schemes.
  /// `rates` (optional) receives the per-flow constraint incidence for the
  /// flow-level engine.
  SchemeAResult evaluate(const net::Network& net,
                         const std::vector<std::uint32_t>& dest,
                         const std::vector<bool>* include_flow = nullptr,
                         double bandwidth_share = 1.0,
                         RateStructure* rates = nullptr) const;

  /// Minimum grid side below which the scheme is declared degenerate.
  static constexpr int kMinGrid = 4;

 private:
  double cell_side_factor_;
};

}  // namespace manetcap::routing
