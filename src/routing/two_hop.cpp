#include "routing/two_hop.h"

#include <algorithm>

#include "geom/spatial_hash.h"
#include "linkcap/link_capacity.h"
#include "util/check.h"

namespace manetcap::routing {

TwoHopResult TwoHopRelay::evaluate(const net::Network& net,
                                   const std::vector<std::uint32_t>& dest,
                                   RateStructure* rates) const {
  const auto& home = net.ms_home();
  const std::size_t n = home.size();
  MANETCAP_CHECK(dest.size() == n);
  if (rates != nullptr) rates->reset(n);

  TwoHopResult res;
  linkcap::LinkCapacityModel mu(net.shape(), net.params().f(),
                                n + net.num_bs());
  const double contact = mu.max_contact_dist_ms_ms();
  geom::SpatialHash hash(std::max(contact, 1e-4), n);
  hash.build(home);

  // Per-node total contact airtime Σ_j μ(i,j): under S* a node is in at
  // most one pair at a time, so this caps both injection and drain rates.
  std::vector<double> airtime(n, 0.0);
  for (std::uint32_t i = 0; i < n; ++i) {
    hash.visit_disk(home[i], contact, [&](std::uint32_t j) {
      if (j == i) return;
      airtime[i] += mu.mu_ms_ms(geom::torus_dist(home[i], home[j]));
    });
  }

  // Per-flow capacity: relays in wireless contact with BOTH endpoints each
  // contribute min(μ_sj, μ_jd)/2 (every bit is transmitted twice). Relay
  // airtime is asymptotically non-binding for permutation traffic — each
  // relay carries Θ(λ) transit traffic against a Θ(1) airtime budget — so
  // the binding constraints are the flow pools and the endpoint airtimes.
  flow::ConstraintSet cs;
  double pool_sum = 0.0;
  double cap_sum = 0.0;
  for (std::uint32_t s = 0; s < n; ++s) {
    const std::uint32_t d = dest[s];
    double pool_cap = 0.0;
    std::size_t pool = 0;
    // Direct source→destination contact also counts (one-hop delivery).
    pool_cap += mu.mu_ms_ms(geom::torus_dist(home[s], home[d]));
    hash.visit_disk(home[s], contact, [&](std::uint32_t j) {
      if (j == s || j == d) return;
      const double m_sj = mu.mu_ms_ms(geom::torus_dist(home[s], home[j]));
      if (m_sj <= 0.0) return;
      const double m_jd = mu.mu_ms_ms(geom::torus_dist(home[j], home[d]));
      if (m_jd <= 0.0) return;
      pool_cap += std::min(m_sj, m_jd) / 2.0;
      ++pool;
    });
    pool_sum += static_cast<double>(pool);
    if (pool_cap <= 0.0) ++res.disconnected_flows;
    const double cap =
        std::min({pool_cap, airtime[s] / 2.0, airtime[d] / 2.0});
    cap_sum += cap;
    if (rates != nullptr) {
      // One private row per flow: the flow's own pool/endpoint bound.
      rates->note(s, static_cast<std::uint32_t>(cs.size()), 1.0);
      rates->flow_served[s] = 1;
      rates->flow_hops[s] = 2.0;  // source → relay → destination
    }
    cs.add(flow::Resource::kWirelessRelay, cap, 1.0);
  }
  if (rates != nullptr) {
    rates->constraints = cs.constraints();
    rates->finalize();
  }

  res.mean_relay_pool = pool_sum / static_cast<double>(n);
  res.throughput = cs.solve();
  res.lambda_symmetric = cap_sum / static_cast<double>(n);
  return res;
}

}  // namespace manetcap::routing
