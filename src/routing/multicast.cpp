#include "routing/multicast.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <unordered_map>
#include <unordered_set>

#include "backbone/backbone.h"
#include "geom/spatial_hash.h"
#include "geom/tessellation.h"
#include "linkcap/link_capacity.h"
#include "routing/scheme_a.h"
#include "util/check.h"

namespace manetcap::routing {

namespace {
std::uint64_t pair_key(int a, int b) {
  const std::uint64_t lo = static_cast<std::uint32_t>(std::min(a, b));
  const std::uint64_t hi = static_cast<std::uint32_t>(std::max(a, b));
  return (hi << 32) | lo;
}
}  // namespace

MulticastTraffic multicast_traffic(std::size_t n, std::size_t g,
                                   rng::Xoshiro256& rng) {
  MANETCAP_CHECK(n >= 2);
  MANETCAP_CHECK_MSG(g >= 1 && g < n, "need 1 <= g < n destinations");
  MulticastTraffic traffic;
  traffic.dests.resize(n);
  for (std::uint32_t s = 0; s < n; ++s) {
    std::unordered_set<std::uint32_t> chosen;
    while (chosen.size() < g) {
      const auto d = static_cast<std::uint32_t>(rng::uniform_index(rng, n));
      if (d != s) chosen.insert(d);
    }
    traffic.dests[s].assign(chosen.begin(), chosen.end());
  }
  return traffic;
}

MulticastSchemeA::MulticastSchemeA(bool share_tree, double cell_side_factor)
    : share_tree_(share_tree), cell_side_factor_(cell_side_factor) {
  MANETCAP_CHECK(cell_side_factor > 0.0 &&
                 cell_side_factor * std::sqrt(5.0) < 2.0);
}

MulticastResult MulticastSchemeA::evaluate(
    const net::Network& net, const MulticastTraffic& traffic) const {
  const auto& home = net.ms_home();
  const std::size_t n = home.size();
  MANETCAP_CHECK(traffic.dests.size() == n);

  MulticastResult res;
  const double side = cell_side_factor_ * net.mobility_radius();
  geom::SquareTessellation tess =
      geom::SquareTessellation::with_cell_side(std::min(side, 1.0));
  if (tess.cells_per_side() < SchemeA::kMinGrid) {
    res.degenerate = true;
    return res;
  }

  linkcap::LinkCapacityModel mu(net.shape(), net.params().f(),
                                n + net.num_bs());
  const double contact = mu.max_contact_dist_ms_ms();

  // Wireless capacity between nearby squarelet pairs + per-node airtime —
  // identical substrate to unicast scheme A.
  std::unordered_map<std::uint64_t, double> cap;
  std::vector<double> airtime(n, 0.0);
  std::vector<int> occupancy(tess.num_cells(), 0);
  std::vector<int> cell_idx(n);
  for (std::size_t i = 0; i < n; ++i) {
    cell_idx[i] = tess.index_of(tess.cell_of(home[i]));
    ++occupancy[cell_idx[i]];
  }
  geom::SpatialHash hash(std::max(contact, 1e-4), n);
  hash.build(home);
  for (std::uint32_t i = 0; i < n; ++i) {
    hash.visit_disk(home[i], contact, [&](std::uint32_t j) {
      if (j <= i) return;
      const double m = mu.mu_ms_ms(geom::torus_dist(home[i], home[j]));
      if (m <= 0.0) return;
      airtime[i] += m;
      airtime[j] += m;
      if (cell_idx[i] != cell_idx[j])
        cap[pair_key(cell_idx[i], cell_idx[j])] += m;
    });
  }

  // Loads: per flow, the union (tree) or multiset (unicast) of the H-V
  // path edges to every destination, with empty-cell detours as in
  // unicast scheme A.
  std::unordered_map<std::uint64_t, double> load;
  std::vector<double> endpoint_load(n, 0.0);
  double tree_edges = 0.0, unicast_edges = 0.0;
  std::unordered_set<std::uint64_t> flow_edges;
  for (std::uint32_t s = 0; s < n; ++s) {
    flow_edges.clear();
    endpoint_load[s] += 1.0;
    for (const std::uint32_t d : traffic.dests[s]) {
      endpoint_load[d] += 1.0;
      const auto path =
          tess.hv_path(tess.cell_at(cell_idx[s]), tess.cell_at(cell_idx[d]));
      int prev = tess.index_of(path.front());
      for (std::size_t h = 1; h < path.size(); ++h) {
        const int cur = tess.index_of(path[h]);
        const bool last = h + 1 == path.size();
        if (!last && occupancy[cur] == 0) continue;
        const std::uint64_t key = pair_key(prev, cur);
        unicast_edges += 1.0;
        if (share_tree_) {
          if (flow_edges.insert(key).second) {
            load[key] += 1.0;
            tree_edges += 1.0;
          }
        } else {
          load[key] += 1.0;
          tree_edges += 1.0;
        }
        prev = cur;
      }
    }
  }
  res.mean_tree_edges = tree_edges / static_cast<double>(n);
  res.mean_unicast_edges = unicast_edges / static_cast<double>(n);

  flow::ConstraintSet cs;
  double cap_sum = 0.0, load_sum = 0.0;
  for (const auto& [key, demanded] : load) {
    auto it = cap.find(key);
    const double capacity = it == cap.end() ? 0.0 : it->second;
    cs.add(flow::Resource::kWirelessRelay, capacity, demanded);
    cap_sum += capacity;
    load_sum += demanded;
  }
  for (std::uint32_t i = 0; i < n; ++i) {
    if (endpoint_load[i] > 0.0)
      cs.add(flow::Resource::kWirelessRelay, airtime[i], endpoint_load[i]);
  }
  res.throughput = cs.solve();

  std::vector<double> at = airtime;
  std::nth_element(at.begin(), at.begin() + at.size() / 2, at.end());
  flow::ConstraintSet sym;
  if (load_sum > 0.0)
    sym.add(flow::Resource::kWirelessRelay, cap_sum, load_sum);
  sym.add(flow::Resource::kWirelessRelay, at[at.size() / 2],
          1.0 + static_cast<double>(traffic.group_size()));
  res.lambda_symmetric = sym.solve().lambda;
  return res;
}

MulticastResult MulticastSchemeB::evaluate(
    const net::Network& net, const MulticastTraffic& traffic) const {
  const auto& home = net.ms_home();
  const auto& bs = net.bs_pos();
  const std::size_t n = home.size();
  const std::size_t k = bs.size();
  MANETCAP_CHECK(traffic.dests.size() == n);
  MANETCAP_CHECK_MSG(k >= 1, "multicast scheme B needs base stations");
  const std::size_t g = traffic.group_size();

  MulticastResult res;
  linkcap::LinkCapacityModel mu(net.shape(), net.params().f(), n + k);
  const double contact = mu.max_contact_dist_ms_bs();
  geom::SpatialHash bs_hash(std::max(contact, 1e-4), k);
  bs_hash.build(bs);

  // Access rates µ_i^A (Lemma 9 substrate).
  std::vector<double> access(n, 0.0);
  for (std::uint32_t i = 0; i < n; ++i) {
    bs_hash.visit_disk(home[i], contact, [&](std::uint32_t l) {
      access[i] += mu.mu_ms_bs(geom::torus_dist(home[i], bs[l]));
    });
  }

  // Wireless demand: one uplink per source, one downlink per destination
  // membership; wired demand: the flow crosses to every *distinct*
  // destination squarelet group once (multicast fan-out on the wires).
  geom::SquareTessellation tess(k >= 48 ? 4 : (k >= 8 ? 2 : 1));
  std::vector<std::size_t> group_sizes(tess.num_cells(), 0);
  std::vector<std::uint32_t> bs_group(k);
  for (std::uint32_t l = 0; l < k; ++l) {
    bs_group[l] =
        static_cast<std::uint32_t>(tess.index_of(tess.cell_of(bs[l])));
    ++group_sizes[bs_group[l]];
  }
  backbone::GroupedBackbone wired(group_sizes, net.params().c());

  flow::ConstraintSet cs;
  std::vector<double> demand(n, 0.0);
  std::size_t uncovered = 0;
  std::unordered_set<std::uint32_t> flow_groups;
  double sum_access = 0.0;
  std::size_t covered = 0;
  for (std::uint32_t s = 0; s < n; ++s) {
    demand[s] += 1.0;  // uplink
    flow_groups.clear();
    const auto gs = static_cast<std::uint32_t>(
        tess.index_of(tess.cell_of(home[s])));
    for (const std::uint32_t d : traffic.dests[s]) {
      demand[d] += 1.0;  // downlink
      const auto gd = static_cast<std::uint32_t>(
          tess.index_of(tess.cell_of(home[d])));
      if (gd != gs) flow_groups.insert(gd);
    }
    if (access[s] <= 0.0) {
      ++uncovered;
      continue;
    }
    for (const std::uint32_t gd : flow_groups) wired.add_load(gs, gd, 1.0);
  }
  for (std::uint32_t i = 0; i < n; ++i) {
    if (access[i] <= 0.0) {
      if (demand[i] > 0.0) ++uncovered;
      continue;
    }
    sum_access += access[i];
    ++covered;
    cs.add(flow::Resource::kAccess, access[i], demand[i]);
  }
  if (wired.max_edge_load() > 0.0) {
    if (wired.max_feasible_scale() == 0.0)
      cs.add(flow::Resource::kBackbone, 0.0, 1.0, "empty BS group");
    else
      cs.add(flow::Resource::kBackbone, net.params().c(),
             wired.max_edge_load());
  }
  res.throughput = cs.solve();

  flow::ConstraintSet sym;
  if (covered > 0)
    sym.add(flow::Resource::kAccess,
            sum_access / static_cast<double>(covered),
            1.0 + static_cast<double>(g));
  else
    sym.add(flow::Resource::kAccess, 0.0, 1.0);
  if (wired.max_edge_load() > 0.0 && wired.max_feasible_scale() > 0.0)
    sym.add(flow::Resource::kBackbone, net.params().c(),
            wired.max_edge_load());
  res.lambda_symmetric = sym.solve().lambda;
  return res;
}

}  // namespace manetcap::routing
