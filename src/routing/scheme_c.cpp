#include "routing/scheme_c.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "geom/spatial_hash.h"
#include "util/check.h"

namespace manetcap::routing {

SchemeC::SchemeC(double delta) : delta_(delta) {
  MANETCAP_CHECK(delta >= 0.0);
}

SchemeCResult SchemeC::evaluate(const net::Network& net,
                                const std::vector<std::uint32_t>& dest,
                                RateStructure* rates) const {
  const auto& home = net.ms_home();
  const auto& bs = net.bs_pos();
  const std::size_t n = home.size();
  const std::size_t k = bs.size();
  MANETCAP_CHECK(dest.size() == n);
  MANETCAP_CHECK_MSG(k >= 1, "scheme C needs base stations");
  if (rates != nullptr) rates->reset(n);

  SchemeCResult res;

  // --- cell association: nearest BS within the MS's cluster ---------------
  // (cluster-free layouts fall back to the globally nearest BS).
  const auto& layout = net.ms_layout();
  const bool cluster_free = net.params().cluster_free();
  std::vector<std::vector<std::uint32_t>> cluster_bs(
      cluster_free ? 0 : layout.num_clusters());
  if (!cluster_free) {
    for (std::uint32_t l = 0; l < k; ++l)
      cluster_bs[net.bs_cluster()[l]].push_back(l);
  }
  geom::SpatialHash assoc_hash(
      std::max(1.0 / std::sqrt(static_cast<double>(k)), 1e-4), k);
  assoc_hash.build(bs);

  constexpr std::uint32_t kNone = ~std::uint32_t{0};
  std::vector<std::uint32_t> serving(n, kNone);
  std::vector<double> cell_radius(k, 0.0);  // farthest associated MS
  std::vector<double> cell_pop(k, 0.0);
  for (std::uint32_t i = 0; i < n; ++i) {
    double best = std::numeric_limits<double>::infinity();
    if (cluster_free) {
      const std::uint32_t l = assoc_hash.nearest(home[i], kNone);
      if (l < k) {
        serving[i] = l;
        best = geom::torus_dist2(home[i], bs[l]);
      }
    } else {
      for (std::uint32_t l : cluster_bs[layout.cluster_of[i]]) {
        const double d = geom::torus_dist2(home[i], bs[l]);
        if (d < best) {
          best = d;
          serving[i] = l;
        }
      }
    }
    if (serving[i] == kNone) {
      ++res.ms_without_bs;
      continue;
    }
    cell_radius[serving[i]] =
        std::max(cell_radius[serving[i]], std::sqrt(best));
    cell_pop[serving[i]] += 1.0;
  }

  // Static nodes still wobble within the mobility disk; the TDMA range must
  // cover the worst excursion (Theorem 8's R_T − 4D/f(n) margin argument).
  const double wobble = 2.0 * net.mobility_radius();
  for (std::uint32_t l = 0; l < k; ++l) cell_radius[l] += wobble;

  // --- TDMA duty cycles from the cell interference graph ------------------
  // Cells a, b conflict when a transmission in a can reach into b's guard
  // zone: d(bs_a, bs_b) < r_a + (1+Δ)·r_b (either direction). Each cell can
  // then be active a 1/(degree+1) fraction of time (list scheduling on a
  // bounded-degree graph; Theorem 9's coloring argument).
  double max_reach = 0.0;
  for (std::uint32_t l = 0; l < k; ++l)
    max_reach = std::max(max_reach, cell_radius[l]);
  geom::SpatialHash bs_hash(std::max((2.0 + delta_) * max_reach, 1e-4), k);
  bs_hash.build(bs);

  std::vector<double> duty(k, 1.0);
  double duty_sum = 0.0;
  double duty_min = std::numeric_limits<double>::infinity();
  for (std::uint32_t a = 0; a < k; ++a) {
    if (cell_pop[a] == 0.0) continue;
    std::size_t degree = 0;
    const double scan = cell_radius[a] + (1.0 + delta_) * max_reach;
    bs_hash.visit_disk(bs[a], scan, [&](std::uint32_t b) {
      if (b == a || cell_pop[b] == 0.0) return;
      const double d = geom::torus_dist(bs[a], bs[b]);
      if (d < cell_radius[a] + (1.0 + delta_) * cell_radius[b] ||
          d < cell_radius[b] + (1.0 + delta_) * cell_radius[a])
        ++degree;
    });
    duty[a] = 1.0 / static_cast<double>(degree + 1);
    duty_sum += duty[a];
    duty_min = std::min(duty_min, duty[a]);
  }

  // --- constraints ---------------------------------------------------------
  flow::ConstraintSet cs;
  constexpr std::uint32_t kNoCid = ~std::uint32_t{0};
  if (res.ms_without_bs > 0)
    cs.add(flow::Resource::kAccess, 0.0, 1.0, "cluster without BS");

  std::vector<std::uint32_t> cell_cid;
  if (rates != nullptr) cell_cid.assign(k, kNoCid);
  // With l = n^L antennas the BS serves up to that many MSs concurrently in
  // its active slots, bounded by the cell population itself — at the
  // paper's single antenna min(1, pop) = 1 and the row is unchanged.
  const double antennas = static_cast<double>(net.params().l());
  double pop_sum = 0.0, pop_max = 0.0;
  std::size_t active_cells = 0;
  for (std::uint32_t l = 0; l < k; ++l) {
    if (cell_pop[l] == 0.0) continue;
    ++active_cells;
    pop_sum += cell_pop[l];
    pop_max = std::max(pop_max, cell_pop[l]);
    // Active cell carries W = min(l, pop) concurrent streams split into
    // symmetric up/down channels; each associated MS needs uplink λ and
    // downlink λ.
    if (rates != nullptr)
      cell_cid[l] = static_cast<std::uint32_t>(cs.size());
    cs.add(flow::Resource::kAccess,
           duty[l] * std::min(antennas, cell_pop[l]), 2.0 * cell_pop[l]);
  }
  res.mean_cell_population =
      active_cells ? pop_sum / static_cast<double>(active_cells) : 0.0;
  res.max_cell_population = pop_max;
  res.mean_duty_cycle =
      active_cells ? duty_sum / static_cast<double>(active_cells) : 0.0;
  res.min_duty_cycle = std::isfinite(duty_min) ? duty_min : 0.0;

  // --- wired backbone between serving BSs ---------------------------------
  // Each flow enters the backbone at the source's serving BS and leaves at
  // the destination's. Routing it over the single direct wire would pin a
  // whole flow to one c(n)-edge; instead the backbone relays through a
  // uniformly random intermediate BS (Valiant load balancing over the
  // complete graph), so every flow costs 2 edge traversals spread evenly
  // over all k(k−1)/2 wires — this is what realizes the aggregate
  // Θ(k²c/n) bound of Theorem 9's phase II.
  double wired_flows = 0.0;
  for (std::uint32_t s = 0; s < n; ++s) {
    if (serving[s] == kNone || serving[dest[s]] == kNone) continue;
    if (serving[s] == serving[dest[s]]) continue;
    wired_flows += 1.0;
  }
  std::uint32_t backbone_cid = kNoCid;
  double backbone_coeff = 0.0;
  if (wired_flows > 0.0 && k >= 2) {
    const double edges = static_cast<double>(k) *
                         (static_cast<double>(k) - 1.0) / 2.0;
    backbone_cid = static_cast<std::uint32_t>(cs.size());
    backbone_coeff = 2.0 / edges;  // Valiant: 2 traversals spread evenly
    cs.add(flow::Resource::kBackbone, net.params().c(),
           2.0 * wired_flows / edges);
  } else if (wired_flows > 0.0) {
    backbone_cid = static_cast<std::uint32_t>(cs.size());
    backbone_coeff = 1.0;  // zero-capacity sentinel: pins wired flows to 0
    cs.add(flow::Resource::kBackbone, 0.0, 1.0, "single BS, no wires");
  }

  // Per-flow incidence: uplink into the source's cell, downlink out of the
  // destination's, plus the Valiant backbone share when the cells differ.
  if (rates != nullptr) {
    rates->constraints = cs.constraints();
    for (std::uint32_t s = 0; s < n; ++s) {
      const std::uint32_t d = dest[s];
      if (serving[s] == kNone || serving[d] == kNone) continue;  // unserved
      rates->flow_served[s] = 1;
      rates->note(s, cell_cid[serving[s]], 1.0);
      rates->note(s, cell_cid[serving[d]], 1.0);
      const bool crosses = serving[s] != serving[d];
      rates->flow_hops[s] = crosses ? 3.0 : 2.0;
      if (crosses && backbone_cid != kNoCid)
        rates->note(s, backbone_cid, backbone_coeff);
    }
    rates->finalize();
  }

  res.throughput = cs.solve();

  // Typical-resource (symmetric) estimate: replaces the strict min over
  // cells by the mean cell — converges to the Θ law without the
  // extreme-value bias of finite-n minima. Within a constant of a feasible
  // rate w.h.p. (cell populations concentrate, Lemma 11).
  {
    flow::ConstraintSet sym;
    if (res.ms_without_bs > 0)
      sym.add(flow::Resource::kAccess, 0.0, 1.0, "cluster without BS");
    if (active_cells > 0)
      sym.add(flow::Resource::kAccess,
              res.mean_duty_cycle *
                  std::min(antennas, res.mean_cell_population),
              2.0 * res.mean_cell_population);
    if (wired_flows > 0.0 && k >= 2) {
      const double edges = static_cast<double>(k) *
                           (static_cast<double>(k) - 1.0) / 2.0;
      sym.add(flow::Resource::kBackbone, net.params().c(),
              2.0 * wired_flows / edges);
    }
    res.lambda_symmetric = sym.solve().lambda;
  }
  return res;
}

}  // namespace manetcap::routing
