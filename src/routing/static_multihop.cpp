#include "routing/static_multihop.h"

#include <algorithm>
#include <cmath>
#include <queue>

#include "geom/spatial_hash.h"
#include "geom/tessellation.h"
#include "util/check.h"

namespace manetcap::routing {

StaticMultihop::StaticMultihop(double range_factor, double delta)
    : range_factor_(range_factor), delta_(delta) {
  MANETCAP_CHECK(range_factor >= 1.0);
  MANETCAP_CHECK(delta >= 0.0);
}

StaticMultihopResult StaticMultihop::evaluate(
    const net::Network& net, const std::vector<std::uint32_t>& dest,
    RateStructure* rates) const {
  return net.params().cluster_free()
             ? evaluate_uniform(net, dest, rates)
             : evaluate_clustered(net, dest, rates);
}

StaticMultihopResult StaticMultihop::evaluate_uniform(
    const net::Network& net, const std::vector<std::uint32_t>& dest,
    RateStructure* rates) const {
  const auto& home = net.ms_home();
  const std::size_t n = home.size();
  MANETCAP_CHECK(dest.size() == n);
  if (rates != nullptr) rates->reset(n);
  StaticMultihopResult res;

  // Gupta–Kumar connectivity range over n uniform nodes.
  const double rt = range_factor_ *
                    std::sqrt(std::log(static_cast<double>(n)) /
                              (M_PI * static_cast<double>(n)));
  res.transmission_range = rt;
  geom::SquareTessellation tess =
      geom::SquareTessellation::with_cell_side(std::min(rt, 0.5));
  if (tess.cells_per_side() < 2) {
    // Range spans the torus: one shared channel, pure TDMA.
    flow::ConstraintSet cs;
    cs.add(flow::Resource::kWirelessRelay, 1.0,
           static_cast<double>(n));
    if (rates != nullptr) {
      rates->constraints = cs.constraints();
      for (std::uint32_t s = 0; s < n; ++s) {
        rates->note(s, 0, 1.0);
        rates->flow_served[s] = 1;
        rates->flow_hops[s] = 1.0;
      }
      rates->finalize();
    }
    res.throughput = cs.solve();
    res.mean_duty_cycle = 1.0;
    return res;
  }

  // Every visited cell must host at least one node to relay.
  std::vector<std::size_t> occupancy(tess.num_cells(), 0);
  for (const auto& p : home) ++occupancy[tess.index_of(tess.cell_of(p))];

  std::vector<double> load(tess.num_cells(), 0.0);
  double hops = 0.0;
  bool broken = false;
  for (std::uint32_t s = 0; s < n; ++s) {
    const auto path =
        tess.hv_path(tess.cell_of(home[s]), tess.cell_of(home[dest[s]]));
    hops += static_cast<double>(path.size()) - 1.0;
    for (const auto& cell : path) {
      const int idx = tess.index_of(cell);
      load[idx] += 1.0;
      if (occupancy[idx] == 0) broken = true;
    }
  }
  res.mean_hops = hops / static_cast<double>(n);
  res.connected = !broken;

  // TDMA duty: same-color cells must be ≥ (2+Δ)·R_T apart.
  const int period =
      static_cast<int>(std::ceil((2.0 + delta_) * rt / tess.cell_side())) + 1;
  const double duty = 1.0 / static_cast<double>(period * period);
  res.mean_duty_cycle = duty;

  flow::ConstraintSet cs;
  constexpr std::uint32_t kNoCid = ~std::uint32_t{0};
  std::uint32_t broken_cid = kNoCid;
  if (broken) {
    broken_cid = static_cast<std::uint32_t>(cs.size());
    cs.add(flow::Resource::kWirelessRelay, 0.0, 1.0, "empty cell");
  }
  std::vector<std::uint32_t> cell_cid;
  if (rates != nullptr) cell_cid.assign(tess.num_cells(), kNoCid);
  double load_sum = 0.0, load_max = 0.0;
  std::size_t loaded_cells = 0;
  for (int idx = 0; idx < tess.num_cells(); ++idx) {
    if (load[idx] > 0.0) {
      if (rates != nullptr)
        cell_cid[idx] = static_cast<std::uint32_t>(cs.size());
      cs.add(flow::Resource::kWirelessRelay, duty, load[idx]);
      load_sum += load[idx];
      load_max = std::max(load_max, load[idx]);
      ++loaded_cells;
    }
  }
  // Per-flow incidence: every visited cell (endpoints included), plus the
  // zero-capacity sentinel for flows whose path crosses an empty cell.
  if (rates != nullptr) {
    rates->constraints = cs.constraints();
    for (std::uint32_t s = 0; s < n; ++s) {
      const auto path =
          tess.hv_path(tess.cell_of(home[s]), tess.cell_of(home[dest[s]]));
      bool flow_broken = false;
      for (const auto& cell : path) {
        const int idx = tess.index_of(cell);
        rates->note(s, cell_cid[idx], 1.0);
        if (occupancy[idx] == 0) flow_broken = true;
      }
      if (flow_broken && broken_cid != kNoCid)
        rates->note(s, broken_cid, 1.0);
      rates->flow_served[s] = 1;
      rates->flow_hops[s] =
          std::max(static_cast<double>(path.size()) - 1.0, 1.0);
    }
    rates->finalize();
  }
  res.throughput = cs.solve();
  res.lambda_symmetric =
      broken || loaded_cells == 0
          ? 0.0
          : duty * static_cast<double>(loaded_cells) / load_sum;
  return res;
}

StaticMultihopResult StaticMultihop::evaluate_clustered(
    const net::Network& net, const std::vector<std::uint32_t>& dest,
    RateStructure* rates) const {
  const auto& layout = net.ms_layout();
  const std::size_t n = net.num_ms();
  const std::size_t m = layout.num_clusters();
  MANETCAP_CHECK(dest.size() == n);
  if (rates != nullptr) rates->reset(n);
  StaticMultihopResult res;
  MANETCAP_CHECK(m >= 2);

  // Lemma 10: R_T = Ω(√γ) with γ = log m / m is necessary for
  // inter-cluster connectivity.
  const double rt =
      range_factor_ * std::sqrt(std::log(static_cast<double>(m)) /
                                (M_PI * static_cast<double>(m)));
  res.transmission_range = rt;
  // A hop connects clusters when members can be within R_T of each other.
  const double link_dist =
      rt + 2.0 * layout.cluster_radius + 2.0 * net.mobility_radius();

  // Cluster adjacency graph.
  std::vector<std::vector<std::uint32_t>> adj(m);
  for (std::uint32_t a = 0; a < m; ++a) {
    for (std::uint32_t b = a + 1; b < m; ++b) {
      if (geom::torus_dist(layout.cluster_centers[a],
                           layout.cluster_centers[b]) <= link_dist) {
        adj[a].push_back(b);
        adj[b].push_back(a);
      }
    }
  }

  // All-pairs BFS parents (m is small: m = n^M with M < 1/2 in practice).
  constexpr std::uint32_t kUnset = ~std::uint32_t{0};
  std::vector<std::vector<std::uint32_t>> parent(
      m, std::vector<std::uint32_t>(m, kUnset));
  for (std::uint32_t src = 0; src < m; ++src) {
    auto& par = parent[src];
    std::queue<std::uint32_t> q;
    q.push(src);
    par[src] = src;
    while (!q.empty()) {
      const std::uint32_t u = q.front();
      q.pop();
      for (std::uint32_t v : adj[u]) {
        if (par[v] == kUnset) {
          par[v] = u;
          q.push(v);
        }
      }
    }
  }

  // Route each flow over the cluster graph; load = visits per cluster.
  std::vector<double> load(m, 0.0);
  double hops = 0.0;
  bool disconnected = false;
  for (std::uint32_t s = 0; s < n; ++s) {
    const std::uint32_t cs_ = layout.cluster_of[s];
    const std::uint32_t cd = layout.cluster_of[dest[s]];
    if (parent[cs_][cd] == kUnset) {
      disconnected = true;
      continue;
    }
    // Walk back from destination cluster to source cluster.
    std::uint32_t cur = cd;
    load[cur] += 1.0;
    while (cur != cs_) {
      cur = parent[cs_][cur];
      load[cur] += 1.0;
      hops += 1.0;
    }
  }
  res.connected = !disconnected;
  res.mean_hops = hops / static_cast<double>(n);

  // Interference: a long-range hop of R_T silences every cluster within the
  // (1+Δ) guard reach; the duty cycle of a cluster is 1/(1 + #conflicting
  // clusters), which is Θ(1/log m) since m·R_T² = Θ(log m) clusters overlap.
  const double guard = (1.0 + delta_) * link_dist;
  flow::ConstraintSet cs;
  constexpr std::uint32_t kNoCid = ~std::uint32_t{0};
  if (disconnected)
    cs.add(flow::Resource::kWirelessRelay, 0.0, 1.0, "disconnected cluster");
  std::vector<std::uint32_t> cluster_cid;
  if (rates != nullptr) cluster_cid.assign(m, kNoCid);
  double duty_sum = 0.0, load_sum = 0.0;
  std::size_t loaded = 0;
  for (std::uint32_t a = 0; a < m; ++a) {
    if (load[a] <= 0.0) continue;
    std::size_t degree = 0;
    for (std::uint32_t b = 0; b < m; ++b) {
      if (b != a && geom::torus_dist(layout.cluster_centers[a],
                                     layout.cluster_centers[b]) <= guard)
        ++degree;
    }
    const double duty = 1.0 / static_cast<double>(degree + 1);
    duty_sum += duty;
    load_sum += load[a];
    ++loaded;
    if (rates != nullptr)
      cluster_cid[a] = static_cast<std::uint32_t>(cs.size());
    cs.add(flow::Resource::kWirelessRelay, duty, load[a]);
  }
  res.mean_duty_cycle =
      loaded ? duty_sum / static_cast<double>(loaded) : 0.0;
  // Per-flow incidence: re-walk each connected flow's cluster chain;
  // disconnected flows carry nothing (flow_served stays 0).
  if (rates != nullptr) {
    rates->constraints = cs.constraints();
    for (std::uint32_t s = 0; s < n; ++s) {
      const std::uint32_t cs_ = layout.cluster_of[s];
      const std::uint32_t cd = layout.cluster_of[dest[s]];
      if (parent[cs_][cd] == kUnset) continue;
      rates->flow_served[s] = 1;
      std::uint32_t cur = cd;
      rates->note(s, cluster_cid[cur], 1.0);
      double hops = 0.0;
      while (cur != cs_) {
        cur = parent[cs_][cur];
        rates->note(s, cluster_cid[cur], 1.0);
        hops += 1.0;
      }
      rates->flow_hops[s] = std::max(hops, 1.0);
    }
    rates->finalize();
  }
  res.throughput = cs.solve();
  // mean duty / mean load over loaded clusters = duty_sum / load_sum.
  res.lambda_symmetric =
      disconnected || loaded == 0 ? 0.0 : duty_sum / load_sum;
  return res;
}

}  // namespace manetcap::routing
