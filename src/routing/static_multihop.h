// Static multihop baseline — the network with mobility switched off.
//
// Two variants, matching the paper's no-BS reference rows:
//  * cluster-free: classical Gupta–Kumar random network. Cells of side
//    R_T = Θ(√(log n / n)) tessellate the torus, flows route H-V through
//    cells, cells are TDMA-activated → λ = Θ(1/(n·R_T)).
//  * clustered (non-uniformly dense): connectivity needs
//    R_T = Ω(√γ(n)) = Ω(√(log m / m)) (Lemma 10) — clusters act as
//    super-nodes. Flows route over the cluster graph; per-cluster TDMA
//    duty reflects the Θ(log m) overlapping clusters in interference
//    range → λ = Θ(√(m / (n²·log m))) (Corollary 3).
#pragma once

#include <cstdint>
#include <vector>

#include "flow/constraints.h"
#include "net/network.h"
#include "routing/rate_structure.h"

namespace manetcap::routing {

struct StaticMultihopResult {
  flow::ThroughputResult throughput;
  /// Typical-cell/cluster estimate (mean duty over mean load) — see
  /// SchemeAResult::lambda_symmetric.
  double lambda_symmetric = 0.0;
  double transmission_range = 0.0;  // R_T used
  bool connected = true;            // routing graph connected?
  double mean_hops = 0.0;
  double mean_duty_cycle = 0.0;
};

class StaticMultihop {
 public:
  /// `range_factor` scales R_T above the connectivity threshold (the
  /// default 2 keeps finite-n instances connected w.h.p. without wasting
  /// an order of spatial reuse).
  explicit StaticMultihop(double range_factor = 2.0, double delta = 1.0);

  /// `rates` (optional) receives the per-flow constraint incidence for
  /// the flow-level engine.
  StaticMultihopResult evaluate(const net::Network& net,
                                const std::vector<std::uint32_t>& dest,
                                RateStructure* rates = nullptr) const;

 private:
  StaticMultihopResult evaluate_uniform(const net::Network& net,
                                        const std::vector<std::uint32_t>& dest,
                                        RateStructure* rates) const;
  StaticMultihopResult evaluate_clustered(
      const net::Network& net, const std::vector<std::uint32_t>& dest,
      RateStructure* rates) const;

  double range_factor_;
  double delta_;
};

}  // namespace manetcap::routing
