// Per-flow rate structure exposed by the routing evaluators for the
// flow-level engine (sim::FlowSim).
//
// Every evaluator reduces a scheme to a flow::ConstraintSet; the solver's
// λ is the symmetric per-node rate. The flow-level engine needs one more
// piece of structure: WHICH constraints each flow loads, and with what
// coefficient — the incidence that turns "the worst resource binds
// everyone" into per-flow TDMA shares and max-min allocation. Evaluators
// fill a RateStructure on demand (pass nullptr to skip; the extra
// bookkeeping is only paid when requested).
//
// Invariants after finalize():
//   - constraints mirrors the evaluator's ConstraintSet row-for-row, so
//     ConstraintSet-style min(cap/load) over `constraints` reproduces the
//     evaluator's λ exactly (bit-for-bit — same rows, same order).
//   - for every constraint c: Σ_f coeff(f, c) ≤ unit_load(c) + ε (zero-cap
//     sentinel rows may be oversubscribed; they force λ_f = 0 regardless).
//   - flow f's incidence is incid_cid/incid_coeff[flow_start[f] ..
//     flow_start[f+1]), cids ascending, duplicates merged.
#pragma once

#include <cstdint>
#include <vector>

#include "flow/constraints.h"

namespace manetcap::routing {

struct RateStructure {
  /// Mirror of the evaluator's constraint rows, in emission order (cid =
  /// row index).
  std::vector<flow::Constraint> constraints;

  /// Per-flow incidence CSR: flow f loads constraint incid_cid[j] with
  /// coefficient incid_coeff[j] for j in [flow_start[f], flow_start[f+1]).
  std::vector<std::uint32_t> flow_start;
  std::vector<std::uint32_t> incid_cid;
  std::vector<double> incid_coeff;

  /// Pipeline depth (store-and-forward hops to destination, ≥ 1) — the
  /// fluid engine delays the first delivery of flow f by flow_hops[f]
  /// slot-epochs' worth of transit.
  std::vector<double> flow_hops;

  /// 0 when the scheme cannot carry the flow at all (uncovered endpoint,
  /// disconnected cluster, excluded from the allocation) — the flow's rate
  /// is pinned to 0 rather than allocated.
  std::vector<std::uint8_t> flow_served;

  /// Clears everything and sizes the per-flow tables for n flows.
  void reset(std::size_t n);

  /// Stages "flow f loads constraint cid with coefficient coeff".
  /// Duplicate (flow, cid) notes accumulate.
  void note(std::uint32_t flow, std::uint32_t cid, double coeff);

  /// Builds the CSR from the staged notes (counting sort by flow, cids
  /// ascending within a flow, duplicates merged).
  void finalize();

 private:
  struct Entry {
    std::uint32_t flow;
    std::uint32_t cid;
    double coeff;
  };
  std::vector<Entry> staging_;
};

}  // namespace manetcap::routing
