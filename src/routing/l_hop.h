// L-maximum-hop hybrid resource allocation — the strategy of Li, Zhang &
// Fang [9] that the paper's related-work section benchmarks against.
//
// Flows whose squarelet distance is at most L hops stay on the ad hoc
// fabric (scheme A machinery); longer flows go through the infrastructure
// (scheme B). The wireless channel is split between the two subsystems
// with share `adhoc_share` vs (1 − adhoc_share); wires belong entirely to
// the infrastructure side. Sweeping L interpolates between pure scheme B
// (L = 0) and pure scheme A (L = ∞) and exposes the interior optimum.
#pragma once

#include <cstdint>
#include <vector>

#include "flow/constraints.h"
#include "net/network.h"
#include "routing/scheme_a.h"
#include "routing/scheme_b.h"

namespace manetcap::routing {

struct LMaxHopResult {
  /// Per-node rate every flow gets (the common λ of both flow classes):
  /// min of the two subsystem rates, worst-case and typical variants.
  double lambda = 0.0;
  double lambda_symmetric = 0.0;
  // Typical-flow rate bounds of the two classes (the inputs to
  // lambda_symmetric's min); 0 when the class is empty or infeasible.
  double lambda_adhoc_class = 0.0;   // ≤ L-hop class (scheme A side)
  double lambda_infra_class = 0.0;   // > L-hop class (scheme B side)
  std::size_t short_flows = 0;       // flows routed ad hoc
  std::size_t long_flows = 0;        // flows routed via BSs
  bool adhoc_degenerate = false;     // scheme A grid too small
};

class LMaxHop {
 public:
  /// `max_hops` = L; `adhoc_share` is the wireless-bandwidth fraction
  /// granted to the ad hoc subsystem (default an even split).
  explicit LMaxHop(int max_hops, double adhoc_share = 0.5);

  LMaxHopResult evaluate(const net::Network& net,
                         const std::vector<std::uint32_t>& dest) const;

 private:
  int max_hops_;
  double adhoc_share_;
};

}  // namespace manetcap::routing
