// Optimal routing & scheduling scheme C (Definition 13) — cellular TDMA for
// the trivial-mobility regime.
//
// Theorem 8 shows that under trivial mobility the network is equivalent to
// a static one, so scheme C treats nodes as pinned at their home-points:
// every MS associates with the nearest BS of its cluster (the generalized
// cell — with the paper's regular placement this is exactly the hexagon
// tessellation), cells are activated in non-interfering TDMA groups, and
// the bandwidth of an active cell is split into symmetric uplink/downlink
// channels. Inter-cell traffic rides the wired backbone.
// Achieves Θ(min(k²c/n, k/n)) (Theorem 9).
#pragma once

#include <cstdint>
#include <vector>

#include "flow/constraints.h"
#include "net/network.h"
#include "routing/rate_structure.h"

namespace manetcap::routing {

struct SchemeCResult {
  flow::ThroughputResult throughput;
  /// Typical-cell capacity estimate (mean duty / mean population instead
  /// of the strict minimum): tracks the Θ law without extreme-value bias;
  /// within a constant of a feasible rate w.h.p.
  double lambda_symmetric = 0.0;
  double mean_cell_population = 0.0;  // MSs per BS cell
  double max_cell_population = 0.0;
  double mean_duty_cycle = 0.0;       // TDMA activity fraction per cell
  double min_duty_cycle = 0.0;
  std::size_t ms_without_bs = 0;      // MSs whose cluster has no BS
};

class SchemeC {
 public:
  /// `delta` is the protocol-model guard factor used to build the cell
  /// interference graph.
  explicit SchemeC(double delta = 1.0);

  /// `rates` (optional) receives the per-flow constraint incidence for
  /// the flow-level engine.
  SchemeCResult evaluate(const net::Network& net,
                         const std::vector<std::uint32_t>& dest,
                         RateStructure* rates = nullptr) const;

 private:
  double delta_;
};

}  // namespace manetcap::routing
