#include "routing/scheme_b.h"

#include <algorithm>
#include <cmath>

#include "backbone/backbone.h"
#include "geom/spatial_hash.h"
#include "geom/tessellation.h"
#include "linkcap/link_capacity.h"
#include "util/check.h"

namespace manetcap::routing {

namespace {
/// Squarelet grid for phase II grouping: constant cell count, shrunk when
/// there are too few BSs to populate 16 cells w.h.p.
int squarelet_grid_side(std::size_t k) {
  if (k >= 48) return 4;
  if (k >= 8) return 2;
  return 1;
}
}  // namespace

SchemeB::SchemeB(BsGrouping grouping, bool strict_coverage)
    : grouping_(grouping), strict_coverage_(strict_coverage) {}

SchemeBResult SchemeB::evaluate(const net::Network& net,
                                const std::vector<std::uint32_t>& dest,
                                const std::vector<bool>* include_flow,
                                double bandwidth_share,
                                RateStructure* rates) const {
  const auto& home = net.ms_home();
  const auto& bs = net.bs_pos();
  const std::size_t n = home.size();
  const std::size_t k = bs.size();
  MANETCAP_CHECK(dest.size() == n);
  MANETCAP_CHECK_MSG(k >= 1, "scheme B needs base stations");
  MANETCAP_CHECK(bandwidth_share > 0.0 && bandwidth_share <= 1.0);
  MANETCAP_CHECK(!include_flow || include_flow->size() == n);
  auto included = [include_flow](std::uint32_t s) {
    return !include_flow || (*include_flow)[s];
  };
  if (rates != nullptr) rates->reset(n);
  // Per-MS access demand: 1 unit as source of an included flow, 1 as its
  // destination.
  std::vector<double> ms_demand(n, 0.0);
  for (std::uint32_t s = 0; s < n; ++s) {
    if (!included(s)) continue;
    ms_demand[s] += 1.0;
    ms_demand[dest[s]] += 1.0;
  }

  SchemeBResult res;
  // The S* range: global Θ(1/√(n+k)) in the uniformly dense regime, but
  // subnet-renormalized Θ(r√(m/n)) when clusters act as subnets (Table I,
  // weak-mobility row) — inside a cluster the node density is m/(πr²)
  // higher, so the critical spacing shrinks accordingly.
  const net::ScalingParams& params = net.params();
  linkcap::LinkCapacityModel mu =
      (grouping_ == BsGrouping::kCluster && !params.cluster_free())
          ? linkcap::LinkCapacityModel::with_range(
                net.shape(), params.f(),
                linkcap::LinkCapacityModel::kDefaultCt * params.r() *
                    std::sqrt(static_cast<double>(params.m()) /
                              static_cast<double>(params.n)))
          : linkcap::LinkCapacityModel(net.shape(), params.f(), n + k);
  const double contact = mu.max_contact_dist_ms_bs();

  // --- phase I & III: wireless access -------------------------------------
  geom::SpatialHash bs_hash(std::max(contact, 1e-4), k);
  bs_hash.build(bs);

  std::vector<double> access(n, 0.0);       // µ_i^A
  std::vector<double> bs_capacity(k, 0.0);  // Σ_i μ(i, l)
  std::vector<double> bs_unit_load(k, 0.0); // Σ_i 2·μ_il/µ_i^A at λ = 1
  constexpr std::uint32_t kNoBs = ~std::uint32_t{0};
  std::vector<std::uint32_t> anchor_bs(n, kNoBs);  // strongest-μ BS
  // Two passes: µ_i^A first, then proportional spreading.
  std::vector<std::vector<std::pair<std::uint32_t, double>>> reach(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    double best = 0.0;
    bs_hash.visit_disk(home[i], contact, [&](std::uint32_t l) {
      const double m = bandwidth_share *
                       mu.mu_ms_bs(geom::torus_dist(home[i], bs[l]));
      if (m <= 0.0) return;
      access[i] += m;
      reach[i].push_back({l, m});
      if (m > best) {
        best = m;
        anchor_bs[i] = l;
      }
    });
  }
  flow::ConstraintSet cs;
  constexpr std::uint32_t kNoCid = ~std::uint32_t{0};
  std::vector<std::uint32_t> ms_row_cid;  // per-MS access (or coverage) row
  std::vector<std::uint32_t> bs_row_cid;  // per-BS aggregate access row
  if (rates != nullptr) {
    ms_row_cid.assign(n, kNoCid);
    bs_row_cid.assign(k, kNoCid);
  }
  double min_access = std::numeric_limits<double>::infinity();
  double sum_access = 0.0;
  for (std::uint32_t i = 0; i < n; ++i) {
    if (access[i] <= 0.0) {
      if (ms_demand[i] > 0.0) {
        ++res.unreachable_ms;
        if (strict_coverage_) {
          if (rates != nullptr)
            ms_row_cid[i] = static_cast<std::uint32_t>(cs.size());
          cs.add(flow::Resource::kAccess, 0.0, ms_demand[i],
                 "unreachable MS");
        }
      }
      continue;
    }
    min_access = std::min(min_access, access[i]);
    sum_access += access[i];
    // Uplink λ per included flow sourced here, downlink λ per included
    // flow terminating here (both 1 under full traffic).
    if (ms_demand[i] > 0.0) {
      if (rates != nullptr)
        ms_row_cid[i] = static_cast<std::uint32_t>(cs.size());
      cs.add(flow::Resource::kAccess, access[i], ms_demand[i]);
    }
    for (const auto& [l, m] : reach[i]) {
      bs_capacity[l] += m;
      bs_unit_load[l] += ms_demand[i] * m / access[i];
    }
  }
  // A BS with l = n^L antennas serves up to l concurrent streams, so its
  // aggregate access row caps at l·W_A instead of W_A (still bounded by the
  // sum of its per-link rates). At the paper's l = 1 this is unchanged.
  const double antennas = static_cast<double>(params.l());
  for (std::uint32_t l = 0; l < k; ++l) {
    if (bs_unit_load[l] > 0.0) {
      if (rates != nullptr)
        bs_row_cid[l] = static_cast<std::uint32_t>(cs.size());
      cs.add(flow::Resource::kAccess,
             std::min(antennas * bandwidth_share, bs_capacity[l]),
             bs_unit_load[l]);
    }
  }
  res.min_access_rate = std::isfinite(min_access) ? min_access : 0.0;
  const std::size_t covered = n - res.unreachable_ms;
  res.mean_access_rate =
      covered ? sum_access / static_cast<double>(covered) : 0.0;

  // --- phase II: wired backbone -------------------------------------------
  std::vector<std::uint32_t> ms_group(n), bs_group(k);
  std::size_t num_groups = 0;
  if (grouping_ == BsGrouping::kSquarelet) {
    geom::SquareTessellation tess(squarelet_grid_side(k));
    num_groups = static_cast<std::size_t>(tess.num_cells());
    for (std::uint32_t l = 0; l < k; ++l)
      bs_group[l] = static_cast<std::uint32_t>(
          tess.index_of(tess.cell_of(bs[l])));
    // A MS belongs to the squarelet of its strongest reachable BS — with
    // a full deployment that is its home squarelet (Definition 12); under
    // partial coverage it is the honest serving group.
    for (std::uint32_t i = 0; i < n; ++i) {
      ms_group[i] = anchor_bs[i] != kNoBs
                        ? bs_group[anchor_bs[i]]
                        : static_cast<std::uint32_t>(
                              tess.index_of(tess.cell_of(home[i])));
    }
  } else {
    num_groups = net.ms_layout().num_clusters();
    for (std::uint32_t i = 0; i < n; ++i)
      ms_group[i] = net.ms_layout().cluster_of[i];
    for (std::uint32_t l = 0; l < k; ++l) bs_group[l] = net.bs_cluster()[l];
  }
  res.num_groups = num_groups;

  std::vector<std::size_t> group_sizes(num_groups, 0);
  for (std::uint32_t l = 0; l < k; ++l) ++group_sizes[bs_group[l]];

  const double c = net.params().c();
  res.wired_edge_capacity = c;
  backbone::GroupedBackbone wired(group_sizes, c);
  for (std::uint32_t s = 0; s < n; ++s) {
    if (!included(s)) continue;
    // Flows with an uncovered endpoint are not served by scheme B.
    if (access[s] <= 0.0 || access[dest[s]] <= 0.0) continue;
    const std::uint32_t gs = ms_group[s], gd = ms_group[dest[s]];
    if (gs == gd) continue;  // data already at the serving BSs
    wired.add_load(gs, gd, 1.0);
  }
  const double edge_load = wired.max_edge_load();
  res.max_backbone_edge_load = edge_load;
  std::uint32_t backbone_cid = kNoCid;
  double backbone_row_load = 0.0;
  if (wired.max_feasible_scale() == 0.0) {
    backbone_cid = static_cast<std::uint32_t>(cs.size());
    backbone_row_load = 1.0;
    cs.add(flow::Resource::kBackbone, 0.0, 1.0, "empty BS group");
  } else if (edge_load > 0.0) {
    backbone_cid = static_cast<std::uint32_t>(cs.size());
    backbone_row_load = edge_load;
    cs.add(flow::Resource::kBackbone, c, edge_load);
  }

  // Per-flow incidence: each flow loads its two endpoints' access rows,
  // the reached BS rows in proportion to the access split (the same
  // m/µ_i^A weights the aggregate pass used), and — when it crosses
  // groups — an even share of the worst backbone edge's load.
  if (rates != nullptr) {
    rates->constraints = cs.constraints();
    double wired_flows = 0.0;
    for (std::uint32_t s = 0; s < n; ++s) {
      if (!included(s)) continue;
      if (access[s] <= 0.0 || access[dest[s]] <= 0.0) continue;
      if (ms_group[s] != ms_group[dest[s]]) wired_flows += 1.0;
    }
    for (std::uint32_t s = 0; s < n; ++s) {
      if (!included(s)) continue;
      const std::uint32_t d = dest[s];
      const bool covered = access[s] > 0.0 && access[d] > 0.0;
      rates->flow_served[s] = covered ? 1 : 0;
      const bool crosses = ms_group[s] != ms_group[d];
      // MS→BS, (wire), BS→MS: 2 wireless hops, +1 store-and-forward stage
      // when the flow crosses the backbone.
      rates->flow_hops[s] = covered && crosses ? 3.0 : 2.0;
      for (const std::uint32_t i : {s, d}) {
        if (ms_row_cid[i] != kNoCid) rates->note(s, ms_row_cid[i], 1.0);
        if (access[i] <= 0.0) continue;
        for (const auto& [l, m] : reach[i]) {
          if (bs_row_cid[l] != kNoCid)
            rates->note(s, bs_row_cid[l], m / access[i]);
        }
      }
      if (covered && crosses && backbone_cid != kNoCid &&
          wired_flows > 0.0)
        rates->note(s, backbone_cid, backbone_row_load / wired_flows);
    }
    rates->finalize();
  }

  res.throughput = cs.solve();

  // Typical-resource (symmetric) estimate: mean access + fluid backbone.
  {
    flow::ConstraintSet sym;
    if (res.mean_access_rate > 0.0)
      sym.add(flow::Resource::kAccess, res.mean_access_rate, 2.0);
    else
      sym.add(flow::Resource::kAccess, 0.0, 2.0);
    if (wired.max_feasible_scale() == 0.0)
      sym.add(flow::Resource::kBackbone, 0.0, 1.0);
    else if (edge_load > 0.0)
      sym.add(flow::Resource::kBackbone, c, edge_load);
    res.lambda_symmetric = sym.solve().lambda;
  }
  return res;
}

}  // namespace manetcap::routing
