#include "routing/rate_structure.h"

#include <algorithm>

namespace manetcap::routing {

void RateStructure::reset(std::size_t n) {
  constraints.clear();
  flow_start.assign(n + 1, 0);
  incid_cid.clear();
  incid_coeff.clear();
  flow_hops.assign(n, 0.0);
  flow_served.assign(n, 0);
  staging_.clear();
}

void RateStructure::note(std::uint32_t flow, std::uint32_t cid,
                         double coeff) {
  staging_.push_back({flow, cid, coeff});
}

void RateStructure::finalize() {
  const std::size_t n = flow_start.size() - 1;
  // Counting sort by flow (stable: staging order preserved within a flow).
  std::vector<std::uint32_t> count(n + 1, 0);
  for (const Entry& e : staging_) ++count[e.flow + 1];
  for (std::size_t f = 0; f < n; ++f) count[f + 1] += count[f];
  std::vector<Entry> sorted(staging_.size());
  std::vector<std::uint32_t> cursor(count.begin(), count.end() - 1);
  for (const Entry& e : staging_) sorted[cursor[e.flow]++] = e;

  incid_cid.clear();
  incid_coeff.clear();
  incid_cid.reserve(sorted.size());
  incid_coeff.reserve(sorted.size());
  for (std::size_t f = 0; f < n; ++f) {
    const std::size_t b = count[f], e = count[f + 1];
    std::sort(sorted.begin() + static_cast<std::ptrdiff_t>(b),
              sorted.begin() + static_cast<std::ptrdiff_t>(e),
              [](const Entry& x, const Entry& y) { return x.cid < y.cid; });
    for (std::size_t j = b; j < e; ++j) {
      const bool merge = incid_cid.size() > flow_start[f] &&
                         incid_cid.back() == sorted[j].cid;
      if (merge) {
        incid_coeff.back() += sorted[j].coeff;
      } else {
        incid_cid.push_back(sorted[j].cid);
        incid_coeff.push_back(sorted[j].coeff);
      }
    }
    flow_start[f + 1] = static_cast<std::uint32_t>(incid_cid.size());
  }
  staging_.clear();
  staging_.shrink_to_fit();
}

}  // namespace manetcap::routing
