// Two-hop relay (Grossglauser–Tse) — the classical MANET baseline.
//
// Source hands each packet to a random relay it meets; the relay delivers
// when it meets the destination. Sustains Θ(1) per-node throughput when
// every node's mobility mixes over the whole network (f(n) = Θ(1), m = n —
// the paper recovers this as a special case, Remark 4/§I), and collapses to
// zero as soon as source and destination mobility disks stop sharing
// relays, which is why restricted mobility costs Θ(1/f(n)) (Lemma 4's
// intuition).
#pragma once

#include <cstdint>
#include <vector>

#include "flow/constraints.h"
#include "net/network.h"
#include "routing/rate_structure.h"

namespace manetcap::routing {

struct TwoHopResult {
  flow::ThroughputResult throughput;
  /// Mean per-flow pool capacity (typical flow instead of the worst one).
  double lambda_symmetric = 0.0;
  double mean_relay_pool = 0.0;   // avg # of usable common relays per flow
  std::size_t disconnected_flows = 0;  // flows with no common relay
};

class TwoHopRelay {
 public:
  /// Fluid capacity: per flow (s, d), relays j usable by both endpoints
  /// contribute min(μ_sj, μ_jd)/2 (each bit is transmitted twice).
  /// `rates` (optional) receives the per-flow constraint incidence for the
  /// flow-level engine.
  TwoHopResult evaluate(const net::Network& net,
                        const std::vector<std::uint32_t>& dest,
                        RateStructure* rates = nullptr) const;
};

}  // namespace manetcap::routing
