// Multicast extension: one source, g destinations per flow.
//
// The paper's Lemma 4 borrows its hop-count device from Li's multicast
// capacity analysis [20]; this module closes the loop by measuring the
// multicast behaviour of the paper's own constructions:
//
//  * MulticastSchemeA routes each flow as the *union* of the H-V squarelet
//    paths to its g destinations (a Steiner-lite tree — shared prefixes
//    are loaded once). Disabling sharing degenerates to g independent
//    unicasts, so the measured tree/unicast ratio quantifies the √g-style
//    gain of [20].
//  * MulticastSchemeB uplinks once, fans out over the wired backbone to
//    every destination group, and downlinks g times — infrastructure
//    multicast is "free" on the wireless side except for the g downlinks.
#pragma once

#include <cstdint>
#include <vector>

#include "flow/constraints.h"
#include "net/network.h"
#include "rng/rng.h"

namespace manetcap::routing {

/// dests[s] = the g distinct destinations of source s (never s itself).
struct MulticastTraffic {
  std::vector<std::vector<std::uint32_t>> dests;

  std::size_t group_size() const {
    return dests.empty() ? 0 : dests.front().size();
  }
};

/// Samples uniform multicast traffic: every MS sources one flow with g
/// distinct uniformly chosen destinations.
MulticastTraffic multicast_traffic(std::size_t n, std::size_t g,
                                   rng::Xoshiro256& rng);

struct MulticastResult {
  flow::ThroughputResult throughput;
  double lambda_symmetric = 0.0;
  /// Squarelet-edge counts per flow: the tree (deduplicated union) vs the
  /// plain sum of the g unicast paths. Their ratio is the sharing factor.
  double mean_tree_edges = 0.0;
  double mean_unicast_edges = 0.0;
  bool degenerate = false;
};

/// Scheme A multicast over squarelet trees (or independent unicasts when
/// `share_tree` is false — the baseline).
class MulticastSchemeA {
 public:
  explicit MulticastSchemeA(bool share_tree = true,
                            double cell_side_factor = 0.8);

  MulticastResult evaluate(const net::Network& net,
                           const MulticastTraffic& traffic) const;

 private:
  bool share_tree_;
  double cell_side_factor_;
};

/// Scheme B multicast: one uplink, wired fan-out, g downlinks.
class MulticastSchemeB {
 public:
  MulticastResult evaluate(const net::Network& net,
                           const MulticastTraffic& traffic) const;
};

}  // namespace manetcap::routing
