#include "routing/scheme_a.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <unordered_map>

#include "geom/spatial_hash.h"
#include "geom/tessellation.h"
#include "linkcap/link_capacity.h"
#include "util/check.h"

namespace manetcap::routing {

namespace {
/// Unordered cell-index pair key for the capacity/load maps.
std::uint64_t pair_key(int a, int b) {
  const std::uint64_t lo = static_cast<std::uint32_t>(std::min(a, b));
  const std::uint64_t hi = static_cast<std::uint32_t>(std::max(a, b));
  return (hi << 32) | lo;
}
}  // namespace

SchemeA::SchemeA(double cell_side_factor)
    : cell_side_factor_(cell_side_factor) {
  MANETCAP_CHECK(cell_side_factor > 0.0);
  // Adjacent squarelets must stay within the MS–MS contact range 2D/f:
  // the worst-case home distance across a 4-adjacency is √5·side.
  MANETCAP_CHECK_MSG(cell_side_factor * std::sqrt(5.0) < 2.0,
                     "cell side too large: adjacent cells out of contact");
}

SchemeAResult SchemeA::evaluate(const net::Network& net,
                                const std::vector<std::uint32_t>& dest,
                                const std::vector<bool>* include_flow,
                                double bandwidth_share,
                                RateStructure* rates) const {
  const auto& home = net.ms_home();
  const std::size_t n = home.size();
  MANETCAP_CHECK(dest.size() == n);
  MANETCAP_CHECK(bandwidth_share > 0.0 && bandwidth_share <= 1.0);
  MANETCAP_CHECK(!include_flow || include_flow->size() == n);
  auto included = [include_flow](std::uint32_t s) {
    return !include_flow || (*include_flow)[s];
  };
  if (rates != nullptr) rates->reset(n);

  SchemeAResult res;
  const double side = cell_side_factor_ * net.mobility_radius();
  geom::SquareTessellation tess = geom::SquareTessellation::with_cell_side(
      std::min(side, 1.0));
  res.grid_side = tess.cells_per_side();
  if (res.grid_side < kMinGrid) {
    res.degenerate = true;
    return res;
  }

  linkcap::LinkCapacityModel mu(net.shape(), net.params().f(),
                                n + net.num_bs());
  const double contact = mu.max_contact_dist_ms_ms();

  // --- wireless capacity between nearby squarelet pairs -------------------
  // cap[{A,B}] = Σ μ(i,j) over home-point pairs i∈A, j∈B within contact.
  // Routing normally hops between 4-adjacent cells; when a path cell is
  // empty the flow skips to the next occupied cell, so capacity is
  // accumulated for every in-contact cell pair, not just adjacencies.
  std::unordered_map<std::uint64_t, double> cap;
  // Total contact airtime per node: Σ_j μ(i,j). Sources inject their flow
  // directly into relays around them (Definition 11 forwards between
  // contiguous squarelets) and destinations drain the same way.
  std::vector<double> airtime(n, 0.0);
  std::vector<int> occupancy(tess.num_cells(), 0);

  std::vector<geom::Cell> cell_of(n);
  std::vector<int> cell_idx(n);
  for (std::size_t i = 0; i < n; ++i) {
    cell_of[i] = tess.cell_of(home[i]);
    cell_idx[i] = tess.index_of(cell_of[i]);
    ++occupancy[cell_idx[i]];
  }

  geom::SpatialHash hash(std::max(contact, 1e-4), n);
  hash.build(home);
  for (std::uint32_t i = 0; i < n; ++i) {
    hash.visit_disk(home[i], contact, [&](std::uint32_t j) {
      if (j <= i) return;
      const double m =
          bandwidth_share * mu.mu_ms_ms(geom::torus_dist(home[i], home[j]));
      if (m <= 0.0) return;
      airtime[i] += m;
      airtime[j] += m;
      if (cell_idx[i] != cell_idx[j])
        cap[pair_key(cell_idx[i], cell_idx[j])] += m;
    });
  }

  // --- loads from H-V routing of the permutation flows -------------------
  // Empty cells on a path are skipped: the flow hops from the last
  // occupied cell directly to the next occupied one (still within contact
  // for a single empty cell, which is the w.h.p. worst case).
  std::unordered_map<std::uint64_t, double> load;
  double total_hops = 0.0;
  std::size_t included_flows = 0;
  for (std::uint32_t s = 0; s < n; ++s) {
    if (!included(s)) continue;
    ++included_flows;
    const auto path = tess.hv_path(cell_of[s], cell_of[dest[s]]);
    int prev = tess.index_of(path.front());
    for (std::size_t h = 1; h < path.size(); ++h) {
      const int cur = tess.index_of(path[h]);
      const bool last = h + 1 == path.size();
      if (!last && occupancy[cur] == 0) continue;  // detour over empty cell
      load[pair_key(prev, cur)] += 1.0;
      total_hops += 1.0;
      prev = cur;
    }
  }
  res.mean_hops =
      included_flows ? total_hops / static_cast<double>(included_flows) : 0.0;

  // --- assemble constraints ----------------------------------------------
  flow::ConstraintSet cs;
  std::unordered_map<std::uint64_t, std::uint32_t> pair_cid;
  double min_cap = std::numeric_limits<double>::infinity();
  double max_load = 0.0;
  for (const auto& [key, demanded] : load) {
    auto it = cap.find(key);
    const double capacity = it == cap.end() ? 0.0 : it->second;
    if (rates != nullptr)
      pair_cid[key] = static_cast<std::uint32_t>(cs.size());
    cs.add(flow::Resource::kWirelessRelay, capacity, demanded);
    min_cap = std::min(min_cap, capacity);
    max_load = std::max(max_load, demanded);
  }
  // Endpoint constraints: node i must inject its flow (as source) and
  // drain its inbound flow (as destination) within its own contact
  // airtime; excluded flows impose no endpoint demand here.
  std::vector<double> endpoint_load(n, 0.0);
  for (std::uint32_t s = 0; s < n; ++s) {
    if (!included(s)) continue;
    endpoint_load[s] += 1.0;
    endpoint_load[dest[s]] += 1.0;
  }
  constexpr std::uint32_t kNoCid = ~std::uint32_t{0};
  std::vector<std::uint32_t> endpoint_cid;
  if (rates != nullptr) endpoint_cid.assign(n, kNoCid);
  for (std::uint32_t i = 0; i < n; ++i) {
    if (endpoint_load[i] > 0.0) {
      if (rates != nullptr)
        endpoint_cid[i] = static_cast<std::uint32_t>(cs.size());
      cs.add(flow::Resource::kWirelessRelay, airtime[i], endpoint_load[i]);
    }
  }

  // Per-flow incidence: re-walk each included flow's H-V path with the
  // same empty-cell detours the load pass took, tying the flow to its
  // cell-pair rows and both endpoint rows.
  if (rates != nullptr) {
    rates->constraints = cs.constraints();
    for (std::uint32_t s = 0; s < n; ++s) {
      if (!included(s)) continue;
      rates->flow_served[s] = 1;
      const auto path = tess.hv_path(cell_of[s], cell_of[dest[s]]);
      int prev = tess.index_of(path.front());
      double hops = 0.0;
      for (std::size_t h = 1; h < path.size(); ++h) {
        const int cur = tess.index_of(path[h]);
        const bool last = h + 1 == path.size();
        if (!last && occupancy[cur] == 0) continue;
        rates->note(s, pair_cid.at(pair_key(prev, cur)), 1.0);
        hops += 1.0;
        prev = cur;
      }
      rates->flow_hops[s] = std::max(hops, 1.0);
      if (endpoint_cid[s] != kNoCid) rates->note(s, endpoint_cid[s], 1.0);
      if (endpoint_cid[dest[s]] != kNoCid)
        rates->note(s, endpoint_cid[dest[s]], 1.0);
    }
    rates->finalize();
  }

  res.throughput = cs.solve();
  res.min_intercell_capacity = std::isfinite(min_cap) ? min_cap : 0.0;
  res.max_intercell_load = max_load;

  // Typical-resource (symmetric) estimate.
  {
    double cap_sum = 0.0, load_sum = 0.0;
    for (const auto& [key, demanded] : load) {
      auto it = cap.find(key);
      cap_sum += it == cap.end() ? 0.0 : it->second;
      load_sum += demanded;
    }
    std::vector<double> at = airtime;
    std::nth_element(at.begin(), at.begin() + at.size() / 2, at.end());
    const double median_airtime = at[at.size() / 2];
    flow::ConstraintSet sym;
    if (load_sum > 0.0)
      sym.add(flow::Resource::kWirelessRelay, cap_sum, load_sum);
    sym.add(flow::Resource::kWirelessRelay, median_airtime, 2.0);
    res.lambda_symmetric = sym.solve().lambda;
  }
  return res;
}

}  // namespace manetcap::routing
