// Optimal routing scheme B (Definition 12) — infrastructure routing.
//
// Phase I:  a MS relays its traffic to the BSs it can reach wirelessly
//           (those within the mobility contact range of its home-point;
//           Lemma 9 shows the aggregate access rate is Θ(k/n)).
// Phase II: source-side BSs forward over the wired backbone to the BSs
//           serving the destination; each flow spreads uniformly over the
//           edges between the two BS groups.
// Phase III: destination-side BSs deliver wirelessly.
//
// The BS grouping is the squarelet tessellation with constant cell area in
// the strong-mobility regime, and the home-point clusters in the weak
// regime (Theorem 7 maps the squarelet argument onto clusters-as-subnets).
// Either way the fluid capacity comes out Θ(min(k²c/n, k/n)).
//
// Generalized model: with l = n^L antennas per BS (net.params().l(), from
// arXiv:1402.2042) each BS's aggregate access row caps at l·W_A instead of
// W_A, realizing the antenna-limited branch Θ(min(k·l, k²c, n)/n). At the
// paper's l = 1 the rows are arithmetically identical.
#pragma once

#include <cstdint>
#include <vector>

#include "flow/constraints.h"
#include "net/network.h"
#include "routing/rate_structure.h"

namespace manetcap::routing {

enum class BsGrouping {
  kSquarelet,  // constant-area squarelets (strong mobility)
  kCluster,    // home-point clusters as subnets (weak mobility)
};

struct SchemeBResult {
  flow::ThroughputResult throughput;
  /// Typical-MS capacity: mean access rate and fluid backbone bound,
  /// without the per-MS/per-BS worst cases (see SchemeAResult).
  double lambda_symmetric = 0.0;
  std::size_t num_groups = 0;
  double min_access_rate = 0.0;   // min over covered MSs of µ_i^A (Lemma 9)
  double mean_access_rate = 0.0;
  double max_backbone_edge_load = 0.0;  // per wired edge, at λ = 1
  double wired_edge_capacity = 0.0;     // c(n)
  std::size_t unreachable_ms = 0;  // MSs with no BS in wireless contact
};

class SchemeB {
 public:
  /// With `strict_coverage` (default off) an MS without any BS in wireless
  /// contact zeroes the scheme's throughput. Off, such MSs are excluded
  /// from the scheme and only counted — in the strong regime the hybrid
  /// operation hands their flows to scheme A, and their count k/f² → ∞
  /// means the fraction vanishes as n grows.
  explicit SchemeB(BsGrouping grouping = BsGrouping::kSquarelet,
                   bool strict_coverage = false);

  /// Fluid per-node capacity of scheme B for permutation traffic `dest`.
  /// Requires net.num_bs() ≥ 1. `include_flow` (optional, size n)
  /// restricts to a flow subset; `bandwidth_share` scales the *wireless*
  /// access capacities when the channel is split with a coexisting scheme
  /// (wires are unaffected).
  /// `rates` (optional) receives the per-flow constraint incidence for the
  /// flow-level engine.
  SchemeBResult evaluate(const net::Network& net,
                         const std::vector<std::uint32_t>& dest,
                         const std::vector<bool>* include_flow = nullptr,
                         double bandwidth_share = 1.0,
                         RateStructure* rates = nullptr) const;

 private:
  BsGrouping grouping_;
  bool strict_coverage_;
};

}  // namespace manetcap::routing
