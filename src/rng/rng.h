// Deterministic, splittable pseudo-random generation.
//
// xoshiro256++ (public-domain algorithm by Blackman & Vigna) seeded through
// splitmix64: fast, high quality, and every experiment takes an explicit
// seed so all results in the repo are reproducible run-to-run.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "geom/point.h"

namespace manetcap::rng {

/// xoshiro256++ engine. Satisfies std::uniform_random_bit_generator.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  /// Seeds the full 256-bit state from `seed` via splitmix64.
  explicit Xoshiro256(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~result_type{0}; }

  result_type operator()();

  /// Derives an independent child generator (stream-split): hashes this
  /// engine's next output with `stream_id` so per-node / per-trial streams
  /// never overlap in practice.
  Xoshiro256 split(std::uint64_t stream_id);

  /// Raw 256-bit state, for checkpoint/restore. A generator restored via
  /// set_state(state()) continues the identical output stream.
  std::array<std::uint64_t, 4> state() const {
    return {s_[0], s_[1], s_[2], s_[3]};
  }
  void set_state(const std::array<std::uint64_t, 4>& s) {
    s_[0] = s[0];
    s_[1] = s[1];
    s_[2] = s[2];
    s_[3] = s[3];
  }

 private:
  std::uint64_t s_[4];
};

/// Uniform double in [0, 1).
double uniform01(Xoshiro256& g);

/// Uniform double in [lo, hi).
double uniform(Xoshiro256& g, double lo, double hi);

/// Uniform integer in [0, n) for n ≥ 1 (Lemire-style rejection-free bound).
std::uint64_t uniform_index(Xoshiro256& g, std::uint64_t n);

/// Uniform point on the unit torus.
geom::Point uniform_point(Xoshiro256& g);

/// Uniform point in the disk of `radius` around `center` (torus-wrapped).
geom::Point uniform_in_disk(Xoshiro256& g, geom::Point center, double radius);

/// Standard normal via Box–Muller (used by the AR(1) mobility process).
double normal(Xoshiro256& g);

/// Fisher–Yates shuffle of [first, last) indices represented as a vector.
template <typename T>
void shuffle(Xoshiro256& g, std::vector<T>& v) {
  for (std::size_t i = v.size(); i > 1; --i) {
    std::size_t j = static_cast<std::size_t>(uniform_index(g, i));
    std::swap(v[i - 1], v[j]);
  }
}

}  // namespace manetcap::rng
