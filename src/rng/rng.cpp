#include "rng/rng.h"

#include <cmath>

#include "util/check.h"

namespace manetcap::rng {

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

inline std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}
}  // namespace

Xoshiro256::Xoshiro256(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

Xoshiro256::result_type Xoshiro256::operator()() {
  const std::uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

Xoshiro256 Xoshiro256::split(std::uint64_t stream_id) {
  std::uint64_t mix = (*this)() ^ (stream_id * 0xd1342543de82ef95ULL + 1);
  return Xoshiro256(mix);
}

double uniform01(Xoshiro256& g) {
  // 53 random mantissa bits → uniform in [0, 1).
  return static_cast<double>(g() >> 11) * 0x1.0p-53;
}

double uniform(Xoshiro256& g, double lo, double hi) {
  MANETCAP_DCHECK(lo <= hi);
  return lo + (hi - lo) * uniform01(g);
}

std::uint64_t uniform_index(Xoshiro256& g, std::uint64_t n) {
  MANETCAP_CHECK_MSG(n >= 1, "uniform_index needs n >= 1");
  // 128-bit multiply-shift; bias is < 2^-64 per draw, negligible for
  // Monte-Carlo use and far below our statistical tolerances.
  return static_cast<std::uint64_t>(
      (static_cast<unsigned __int128>(g()) * n) >> 64);
}

geom::Point uniform_point(Xoshiro256& g) {
  return {uniform01(g), uniform01(g)};
}

geom::Point uniform_in_disk(Xoshiro256& g, geom::Point center, double radius) {
  MANETCAP_CHECK(radius >= 0.0);
  // Inverse-CDF in polar coordinates.
  double r = radius * std::sqrt(uniform01(g));
  double theta = uniform(g, 0.0, 2.0 * M_PI);
  return center.displaced({r * std::cos(theta), r * std::sin(theta)});
}

double normal(Xoshiro256& g) {
  double u1 = uniform01(g);
  double u2 = uniform01(g);
  if (u1 <= 0.0) u1 = 0x1.0p-53;
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
}

}  // namespace manetcap::rng
