#include "capacity/formulas.h"

#include <algorithm>

#include "util/check.h"

namespace manetcap::capacity {

double mobility_exponent(double alpha) { return -alpha; }

double infrastructure_exponent(double K, double phi) {
  // min(k²c/n, k/n) with k²c = k·µ_c = n^(K+ϕ): the min switches at ϕ = 0.
  return K + std::min(phi, 0.0) - 1.0;
}

double clustered_no_bs_exponent(double M) { return M / 2.0 - 1.0; }

bool backbone_limited(double phi) { return phi < 0.0; }

bool mobility_dominant(double alpha, double K, double phi) {
  return mobility_exponent(alpha) > infrastructure_exponent(K, phi);
}

CapacityLaw capacity_law(const net::ScalingParams& p) {
  const double M = p.cluster_free() ? 1.0 : p.M;
  const double R = p.cluster_free() ? 0.0 : p.R;
  CapacityLaw law;
  law.regime = classify_exponents(p.alpha, M, R);
  law.with_bs = p.with_bs;

  const double mob = mobility_exponent(p.alpha);
  const double infra =
      p.with_bs ? infrastructure_exponent(p.K, p.phi) : -2.0;

  switch (law.regime) {
    case MobilityRegime::kStrong:
      if (p.with_bs) {
        law.exponent = std::max(mob, infra);
        law.expression = "Th(1/f) + Th(min(k^2 c/n, k/n))";
      } else {
        law.exponent = mob;
        law.expression = "Th(1/f)";
      }
      law.rt_exponent = -0.5;
      law.rt_expression = "Th(1/sqrt(n))";
      break;
    case MobilityRegime::kWeak:
      if (p.with_bs) {
        law.exponent = infra;
        law.expression = "Th(min(k^2 c/n, k/n))";
        // R_T = r·√(m/n): within-cluster S* range (Table I).
        law.rt_exponent = -R + (M - 1.0) / 2.0;
        law.rt_expression = "Th(r sqrt(m/n))";
      } else {
        law.exponent = clustered_no_bs_exponent(M);
        law.expression = "Th(sqrt(m/(n^2 log m)))";
        law.rt_exponent = -M / 2.0;
        law.rt_expression = "Th(sqrt(log m / m))";
      }
      break;
    case MobilityRegime::kTrivial:
      if (p.with_bs) {
        law.exponent = infra;
        law.expression = "Th(min(k^2 c/n, k/n))";
        // R_T = r·√(m/k): the hexagon cell side (Table I).
        law.rt_exponent = -R + (M - p.K) / 2.0;
        law.rt_expression = "Th(r sqrt(m/k))";
      } else {
        law.exponent = clustered_no_bs_exponent(M);
        law.expression = "Th(sqrt(m/(n^2 log m)))";
        law.rt_exponent = -M / 2.0;
        law.rt_expression = "Th(sqrt(log m / m))";
      }
      break;
  }
  return law;
}

double capacity_exponent(const net::ScalingParams& p) {
  return capacity_law(p).exponent;
}

}  // namespace manetcap::capacity
