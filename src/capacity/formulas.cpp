#include "capacity/formulas.h"

#include <algorithm>

#include "util/check.h"

namespace manetcap::capacity {

double mobility_exponent(double alpha) { return -alpha; }

double infrastructure_exponent(double K, double phi) {
  // min(k²c/n, k/n) with k²c = k·µ_c = n^(K+ϕ): the min switches at ϕ = 0.
  return K + std::min(phi, 0.0) - 1.0;
}

double infrastructure_exponent(double K, double phi, double L) {
  // min(k·l, k²c, n)/n = n^(min(K+L, K+ϕ, 1) − 1). At L = 0 the antenna
  // branch K+L = K ≤ 1 absorbs the saturation cap and this reduces to the
  // 2-arg form.
  return std::min({K + L, K + phi, 1.0}) - 1.0;
}

InfraBottleneck infrastructure_bottleneck(double K, double phi, double L) {
  const double antenna = K + L;
  const double backbone = K + phi;
  if (backbone < std::min(antenna, 1.0)) return InfraBottleneck::kBackbone;
  if (antenna <= 1.0) return InfraBottleneck::kAntenna;
  return InfraBottleneck::kSaturated;
}

std::string to_string(InfraBottleneck b) {
  switch (b) {
    case InfraBottleneck::kBackbone:
      return "backbone";
    case InfraBottleneck::kAntenna:
      return "antenna";
    case InfraBottleneck::kSaturated:
      return "saturated";
  }
  return "?";
}

double clustered_no_bs_exponent(double M) { return M / 2.0 - 1.0; }

bool backbone_limited(double phi) { return phi < 0.0; }

bool mobility_dominant(double alpha, double K, double phi) {
  return mobility_exponent(alpha) > infrastructure_exponent(K, phi);
}

bool mobility_dominant(double alpha, double K, double phi, double L) {
  return mobility_exponent(alpha) > infrastructure_exponent(K, phi, L);
}

namespace {

std::string infra_expression(double L) {
  return L > 0.0 ? "Th(min(k l/n, k^2 c/n, 1))" : "Th(min(k^2 c/n, k/n))";
}

/// Fill the no-BS clustered row (shared by the !with_bs cases and the
/// with-BS fallback when ignoring the BSs is order-better).
void fill_clustered_no_bs(CapacityLaw& law, double M) {
  law.exponent = clustered_no_bs_exponent(M);
  law.expression = "Th(sqrt(m/(n^2 log m)))";
  law.rt_exponent = -M / 2.0;
  law.rt_expression = "Th(sqrt(log m / m))";
}

}  // namespace

CapacityLaw capacity_law(const net::ScalingParams& p) {
  const double M = p.cluster_free() ? 1.0 : p.M;
  const double R = p.cluster_free() ? 0.0 : p.R;
  CapacityLaw law;
  law.regime = classify_exponents(p.alpha, M, R);
  law.with_bs = p.with_bs;

  const double mob = mobility_exponent(p.alpha);
  const double infra =
      p.with_bs ? infrastructure_exponent(p.K, p.phi, p.L) : -2.0;

  switch (law.regime) {
    case MobilityRegime::kStrong:
      if (p.with_bs) {
        law.exponent = std::max(mob, infra);
        law.expression = "Th(1/f) + " + infra_expression(p.L);
      } else {
        law.exponent = mob;
        law.expression = "Th(1/f)";
      }
      law.rt_exponent = -0.5;
      law.rt_expression = "Th(1/sqrt(n))";
      break;
    case MobilityRegime::kWeak:
      if (p.with_bs) {
        // BSs can always be ignored: the achievable law is the max of the
        // infrastructure term and the clustered no-BS scheme. (Pre-fix this
        // returned `infra` alone, so a tiny-K network reported *worse*
        // order capacity with BSs than without.)
        if (clustered_no_bs_exponent(M) > infra) {
          fill_clustered_no_bs(law, M);
        } else {
          law.exponent = infra;
          law.expression = infra_expression(p.L);
          // R_T = r·√(m/n): within-cluster S* range (Table I).
          law.rt_exponent = -R + (M - 1.0) / 2.0;
          law.rt_expression = "Th(r sqrt(m/n))";
        }
      } else {
        fill_clustered_no_bs(law, M);
      }
      break;
    case MobilityRegime::kTrivial:
      if (p.with_bs) {
        if (clustered_no_bs_exponent(M) > infra) {
          fill_clustered_no_bs(law, M);
        } else {
          law.exponent = infra;
          law.expression = infra_expression(p.L);
          // R_T = r·√(m/k): the hexagon cell side (Table I).
          law.rt_exponent = -R + (M - p.K) / 2.0;
          law.rt_expression = "Th(r sqrt(m/k))";
        }
      } else {
        fill_clustered_no_bs(law, M);
      }
      break;
  }
  return law;
}

double capacity_exponent(const net::ScalingParams& p) {
  return capacity_law(p).exponent;
}

}  // namespace manetcap::capacity
