#include "capacity/phase_diagram.h"

#include <algorithm>
#include <sstream>

#include "capacity/formulas.h"
#include "util/check.h"

namespace manetcap::capacity {

const PhasePoint& PhaseDiagram::at(std::size_t ai, std::size_t ki) const {
  MANETCAP_CHECK_MSG(ai < alpha_steps && ki < k_steps,
                     "PhaseDiagram::at(" << ai << ", " << ki
                         << ") out of bounds (alpha_steps=" << alpha_steps
                         << ", k_steps=" << k_steps << ")");
  return grid[ki * alpha_steps + ai];
}

PhaseDiagram compute_phase_diagram(double phi, std::size_t alpha_steps,
                                   std::size_t k_steps) {
  return compute_phase_diagram(phi, 0.0, alpha_steps, k_steps);
}

PhaseDiagram compute_phase_diagram(double phi, double L,
                                   std::size_t alpha_steps,
                                   std::size_t k_steps) {
  MANETCAP_CHECK(alpha_steps >= 2 && k_steps >= 2);
  PhaseDiagram d;
  d.phi = phi;
  d.L = L;
  d.alpha_steps = alpha_steps;
  d.k_steps = k_steps;
  d.grid.reserve(alpha_steps * k_steps);
  for (std::size_t ki = 0; ki < k_steps; ++ki) {
    const double K =
        static_cast<double>(ki) / static_cast<double>(k_steps - 1);
    for (std::size_t ai = 0; ai < alpha_steps; ++ai) {
      const double alpha = 0.5 * static_cast<double>(ai) /
                           static_cast<double>(alpha_steps - 1);
      PhasePoint p;
      p.alpha = alpha;
      p.K = K;
      const double mob = mobility_exponent(alpha);
      const double infra = infrastructure_exponent(K, phi, L);
      p.mobility_dominant = mob > infra;
      p.exponent = std::max(mob, infra);
      d.grid.push_back(p);
    }
  }
  return d;
}

double dominance_boundary_K(double alpha, double phi) {
  return 1.0 - alpha - std::min(phi, 0.0);
}

double dominance_boundary_K(double alpha, double phi, double L) {
  // min(K+L, K+ϕ, 1) − 1 ≥ −α. The saturation branch gives 0 ≥ −α, i.e. it
  // can only decide at α = 0 where every K already satisfies the K-branches;
  // the binding condition is K ≥ 1 − α − min(L, ϕ).
  return 1.0 - alpha - std::min(L, phi);
}

const FrontierPoint& FrontierDiagram::at(std::size_t pi,
                                         std::size_t li) const {
  MANETCAP_CHECK_MSG(pi < phi_steps && li < l_steps,
                     "FrontierDiagram::at(" << pi << ", " << li
                         << ") out of bounds (phi_steps=" << phi_steps
                         << ", l_steps=" << l_steps << ")");
  return grid[li * phi_steps + pi];
}

FrontierDiagram compute_frontier_diagram(double alpha, double K,
                                         std::size_t phi_steps,
                                         std::size_t l_steps) {
  MANETCAP_CHECK(phi_steps >= 2 && l_steps >= 2);
  FrontierDiagram d;
  d.alpha = alpha;
  d.K = K;
  d.phi_steps = phi_steps;
  d.l_steps = l_steps;
  d.grid.reserve(phi_steps * l_steps);
  for (std::size_t li = 0; li < l_steps; ++li) {
    const double L =
        d.l_lo + (d.l_hi - d.l_lo) * static_cast<double>(li) /
                     static_cast<double>(l_steps - 1);
    for (std::size_t pi = 0; pi < phi_steps; ++pi) {
      const double phi =
          d.phi_lo + (d.phi_hi - d.phi_lo) * static_cast<double>(pi) /
                         static_cast<double>(phi_steps - 1);
      FrontierPoint p;
      p.phi = phi;
      p.L = L;
      const double mob = mobility_exponent(alpha);
      const double infra = infrastructure_exponent(K, phi, L);
      p.mobility_dominant = mob > infra;
      p.exponent = std::max(mob, infra);
      p.bottleneck = infrastructure_bottleneck(K, phi, L);
      d.grid.push_back(p);
    }
  }
  return d;
}

std::string render_ascii(const PhaseDiagram& d) {
  std::ostringstream os;
  os << "K \\ alpha  (phi = " << d.phi;
  if (d.L != 0.0) os << ", L = " << d.L;
  os << ")\n";
  for (std::size_t ki = d.k_steps; ki-- > 0;) {
    const double K = static_cast<double>(ki) /
                     static_cast<double>(d.k_steps - 1);
    os.width(5);
    os.precision(2);
    os << std::fixed << K << "  ";
    for (std::size_t ai = 0; ai < d.alpha_steps; ++ai)
      os << (d.at(ai, ki).mobility_dominant ? 'M' : 'I');
    os << '\n';
  }
  os << "       ";
  for (std::size_t ai = 0; ai < d.alpha_steps; ++ai)
    os << (ai % 5 == 0 ? '|' : '-');
  os << "  alpha: 0 .. 0.5 ('M' mobility-, 'I' infrastructure-dominant)\n";
  return os.str();
}

std::string render_ascii(const FrontierDiagram& d) {
  std::ostringstream os;
  os << "L \\ phi  (alpha = " << d.alpha << ", K = " << d.K << ")\n";
  for (std::size_t li = d.l_steps; li-- > 0;) {
    const double L = d.l_lo + (d.l_hi - d.l_lo) * static_cast<double>(li) /
                                  static_cast<double>(d.l_steps - 1);
    os.width(5);
    os.precision(2);
    os << std::fixed << L << "  ";
    for (std::size_t pi = 0; pi < d.phi_steps; ++pi) {
      const FrontierPoint& p = d.at(pi, li);
      char c = '?';
      if (p.mobility_dominant) {
        c = 'M';
      } else {
        switch (p.bottleneck) {
          case InfraBottleneck::kBackbone: c = 'W'; break;
          case InfraBottleneck::kAntenna: c = 'A'; break;
          case InfraBottleneck::kSaturated: c = 'S'; break;
        }
      }
      os << c;
    }
    os << '\n';
  }
  os << "       ";
  for (std::size_t pi = 0; pi < d.phi_steps; ++pi)
    os << (pi % 5 == 0 ? '|' : '-');
  os << "  phi: " << d.phi_lo << " .. " << d.phi_hi
     << " ('M' mobility, 'A' antenna-, 'W' backbone-limited, 'S' saturated)\n";
  return os.str();
}

}  // namespace manetcap::capacity
