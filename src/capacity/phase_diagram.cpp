#include "capacity/phase_diagram.h"

#include <algorithm>
#include <sstream>

#include "capacity/formulas.h"
#include "util/check.h"

namespace manetcap::capacity {

const PhasePoint& PhaseDiagram::at(std::size_t ai, std::size_t ki) const {
  MANETCAP_CHECK(ai < alpha_steps && ki < k_steps);
  return grid[ki * alpha_steps + ai];
}

PhaseDiagram compute_phase_diagram(double phi, std::size_t alpha_steps,
                                   std::size_t k_steps) {
  MANETCAP_CHECK(alpha_steps >= 2 && k_steps >= 2);
  PhaseDiagram d;
  d.phi = phi;
  d.alpha_steps = alpha_steps;
  d.k_steps = k_steps;
  d.grid.reserve(alpha_steps * k_steps);
  for (std::size_t ki = 0; ki < k_steps; ++ki) {
    const double K =
        static_cast<double>(ki) / static_cast<double>(k_steps - 1);
    for (std::size_t ai = 0; ai < alpha_steps; ++ai) {
      const double alpha = 0.5 * static_cast<double>(ai) /
                           static_cast<double>(alpha_steps - 1);
      PhasePoint p;
      p.alpha = alpha;
      p.K = K;
      const double mob = mobility_exponent(alpha);
      const double infra = infrastructure_exponent(K, phi);
      p.mobility_dominant = mob > infra;
      p.exponent = std::max(mob, infra);
      d.grid.push_back(p);
    }
  }
  return d;
}

double dominance_boundary_K(double alpha, double phi) {
  return 1.0 - alpha - std::min(phi, 0.0);
}

std::string render_ascii(const PhaseDiagram& d) {
  std::ostringstream os;
  os << "K \\ alpha  (phi = " << d.phi << ")\n";
  for (std::size_t ki = d.k_steps; ki-- > 0;) {
    const double K = static_cast<double>(ki) /
                     static_cast<double>(d.k_steps - 1);
    os.width(5);
    os.precision(2);
    os << std::fixed << K << "  ";
    for (std::size_t ai = 0; ai < d.alpha_steps; ++ai)
      os << (d.at(ai, ki).mobility_dominant ? 'M' : 'I');
    os << '\n';
  }
  os << "       ";
  for (std::size_t ai = 0; ai < d.alpha_steps; ++ai)
    os << (ai % 5 == 0 ? '|' : '-');
  os << "  alpha: 0 .. 0.5 ('M' mobility-, 'I' infrastructure-dominant)\n";
  return os.str();
}

}  // namespace manetcap::capacity
