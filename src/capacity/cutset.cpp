#include "capacity/cutset.h"

#include <algorithm>
#include <limits>

#include "geom/spatial_hash.h"
#include "linkcap/link_capacity.h"
#include "util/check.h"

namespace manetcap::capacity {

namespace {
/// True iff point is inside the band x ∈ [x0, x0 + 1/2) on the torus.
bool in_band(geom::Point p, double x0) {
  return geom::wrap01(p.x - x0) < 0.5;
}
}  // namespace

double CutBound::lambda_bound() const {
  if (crossing_flows == 0) return std::numeric_limits<double>::infinity();
  return (wireless_capacity + access_capacity + wired_capacity) /
         static_cast<double>(crossing_flows);
}

CutBound evaluate_strip_cut(const net::Network& net,
                            const std::vector<std::uint32_t>& dest,
                            double x0) {
  const auto& home = net.ms_home();
  const auto& bs = net.bs_pos();
  const std::size_t n = home.size();
  MANETCAP_CHECK(dest.size() == n);

  CutBound cut;
  cut.x = x0;

  linkcap::LinkCapacityModel mu(net.shape(), net.params().f(),
                                n + bs.size());

  std::vector<bool> ms_in(n);
  for (std::size_t i = 0; i < n; ++i) ms_in[i] = in_band(home[i], x0);

  // Wireless MS↔MS capacity across the cut: only pairs within contact of
  // the two boundary lines contribute (μ has finite support).
  const double contact = mu.max_contact_dist_ms_ms();
  geom::SpatialHash hash(std::max(contact, 1e-4), n);
  hash.build(home);
  for (std::uint32_t i = 0; i < n; ++i) {
    if (!ms_in[i]) continue;
    hash.visit_disk(home[i], contact, [&](std::uint32_t j) {
      if (ms_in[j]) return;
      cut.wireless_capacity +=
          mu.mu_ms_ms(geom::torus_dist(home[i], home[j]));
    });
  }

  // Wireless MS↔BS capacity across the cut (both orientations).
  if (!bs.empty()) {
    const double bs_contact = mu.max_contact_dist_ms_bs();
    geom::SpatialHash bs_hash(std::max(bs_contact, 1e-4), bs.size());
    bs_hash.build(bs);
    for (std::uint32_t i = 0; i < n; ++i) {
      const bool inside = ms_in[i];
      bs_hash.visit_disk(home[i], bs_contact, [&](std::uint32_t l) {
        if (in_band(bs[l], x0) != inside)
          cut.access_capacity +=
              mu.mu_ms_bs(geom::torus_dist(home[i], bs[l]));
      });
    }
    // Wired capacity: every (inside, outside) BS pair carries c(n).
    std::size_t k_in = 0;
    for (const auto& y : bs)
      if (in_band(y, x0)) ++k_in;
    cut.wired_capacity = static_cast<double>(k_in) *
                         static_cast<double>(bs.size() - k_in) *
                         net.params().c();
  }

  for (std::uint32_t s = 0; s < n; ++s)
    if (ms_in[s] && !ms_in[dest[s]]) ++cut.crossing_flows;
  return cut;
}

double HopCountBound::lambda_bound() const {
  if (total_min_hops <= 0.0) return std::numeric_limits<double>::infinity();
  return total_budget / total_min_hops;
}

HopCountBound hop_count_bound(const net::Network& net,
                              const std::vector<std::uint32_t>& dest) {
  const auto& home = net.ms_home();
  const std::size_t n = home.size();
  MANETCAP_CHECK(dest.size() == n);

  HopCountBound bound;
  linkcap::LinkCapacityModel mu(net.shape(), net.params().f(), n);
  const double contact = mu.max_contact_dist_ms_ms();

  // Transmission budget: each node can be in at most one S* pair at a
  // time; its long-run scheduled fraction is Σ_j μ(i,j), and each pair
  // consumes two nodes, hence the /2.
  geom::SpatialHash hash(std::max(contact, 1e-4), n);
  hash.build(home);
  for (std::uint32_t i = 0; i < n; ++i) {
    hash.visit_disk(home[i], contact, [&](std::uint32_t j) {
      if (j == i) return;
      bound.total_budget +=
          mu.mu_ms_ms(geom::torus_dist(home[i], home[j])) / 2.0;
    });
  }

  for (std::uint32_t s = 0; s < n; ++s) {
    const double d = geom::torus_dist(home[s], home[dest[s]]);
    bound.total_min_hops += std::max(1.0, std::ceil(d / contact));
  }
  return bound;
}

CutBound best_strip_cut(const net::Network& net,
                        const std::vector<std::uint32_t>& dest,
                        std::size_t count) {
  MANETCAP_CHECK(count >= 1);
  CutBound best;
  double best_bound = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < count; ++i) {
    CutBound cut = evaluate_strip_cut(
        net, dest, static_cast<double>(i) / static_cast<double>(count));
    if (cut.lambda_bound() < best_bound) {
      best_bound = cut.lambda_bound();
      best = cut;
    }
  }
  return best;
}

}  // namespace manetcap::capacity
