// Figure 3: the capacity phase diagram over (α, K).
//
// The paper plots per-node capacity as a function of f(n) = n^α and
// k = n^K with µ_c = n^ϕ as a parameter: one panel for ϕ ≥ 0 (access phase
// is the infrastructure bottleneck) and one for ϕ = −½ (wired backbone is
// the bottleneck). Each (α, K) point is either mobility-dominant
// (λ = Θ(1/f)) or infrastructure-dominant (λ = Θ(min(k²c/n, k/n))); the
// boundary is the line where the two exponents cross.
#pragma once

#include <string>
#include <vector>

namespace manetcap::capacity {

struct PhasePoint {
  double alpha = 0.0;
  double K = 0.0;
  double exponent = 0.0;        // capacity exponent at this point
  bool mobility_dominant = false;
};

/// One panel of Figure 3 for a fixed ϕ.
struct PhaseDiagram {
  double phi = 0.0;
  std::vector<PhasePoint> grid;  // row-major over (alpha, K)
  std::size_t alpha_steps = 0;
  std::size_t k_steps = 0;

  const PhasePoint& at(std::size_t ai, std::size_t ki) const;
};

/// Computes the diagram on a uniform grid α ∈ [0, ½], K ∈ [0, 1]
/// (strong-mobility regime assumed, as in the figure).
PhaseDiagram compute_phase_diagram(double phi, std::size_t alpha_steps = 11,
                                   std::size_t k_steps = 11);

/// The dominance boundary: for each α, the smallest K at which
/// infrastructure overtakes mobility, i.e. K + min(ϕ,0) − 1 ≥ −α
/// ⇔ K ≥ 1 − α − min(ϕ, 0). Values above 1 mean mobility dominates for
/// every admissible K.
double dominance_boundary_K(double alpha, double phi);

/// ASCII rendering of a panel (rows = K descending, cols = α ascending;
/// 'M' mobility-dominant, 'I' infrastructure-dominant).
std::string render_ascii(const PhaseDiagram& d);

}  // namespace manetcap::capacity
