// Figure 3: the capacity phase diagram over (α, K) — plus the generalized
// antenna/backhaul panel over (ϕ, L).
//
// The paper plots per-node capacity as a function of f(n) = n^α and
// k = n^K with µ_c = n^ϕ as a parameter: one panel for ϕ ≥ 0 (access phase
// is the infrastructure bottleneck) and one for ϕ = −½ (wired backbone is
// the bottleneck). Each (α, K) point is either mobility-dominant
// (λ = Θ(1/f)) or infrastructure-dominant (λ = Θ(min(k·l, k²c, n)/n)); the
// boundary is the line where the two exponents cross.
//
// The generalized model (arXiv:1402.2042) adds l = n^L antennas per BS, so
// a second panel type sweeps (ϕ, L) at fixed (α, K) and colors each point
// by the binding bottleneck: Mobility, Antenna-limited, Wired-backbone, or
// Saturated (per-node Θ(1) cap).
#pragma once

#include <string>
#include <vector>

#include "capacity/formulas.h"

namespace manetcap::capacity {

struct PhasePoint {
  double alpha = 0.0;
  double K = 0.0;
  double exponent = 0.0;        // capacity exponent at this point
  bool mobility_dominant = false;
};

/// One panel of Figure 3 for a fixed (ϕ, L).
///
/// Layout contract (pinned by CapacityPhaseDiagramTest.LayoutIsRowMajor):
/// `grid[ki * alpha_steps + ai]` holds the point for the ai-th α and the
/// ki-th K — α is the fast axis, K the slow one. Use `at(ai, ki)`; it
/// CHECKs bounds.
struct PhaseDiagram {
  double phi = 0.0;
  double L = 0.0;                // antennas-per-BS exponent (0 = paper model)
  std::vector<PhasePoint> grid;  // row-major over (alpha, K); see above
  std::size_t alpha_steps = 0;
  std::size_t k_steps = 0;

  const PhasePoint& at(std::size_t ai, std::size_t ki) const;
};

/// Computes the single-antenna (L = 0) diagram on a uniform grid
/// α ∈ [0, ½], K ∈ [0, 1] (strong-mobility regime assumed, as in the
/// figure).
PhaseDiagram compute_phase_diagram(double phi, std::size_t alpha_steps = 11,
                                   std::size_t k_steps = 11);

/// Generalized-model overload with l = n^L antennas per BS. No defaulted
/// trailing parameters — defaults would make `compute_phase_diagram(0.5, 1)`
/// ambiguous against the legacy 3-arg form.
PhaseDiagram compute_phase_diagram(double phi, double L,
                                   std::size_t alpha_steps,
                                   std::size_t k_steps);

/// The dominance boundary: for each α, the smallest K at which
/// infrastructure overtakes mobility, i.e. K + min(ϕ,0) − 1 ≥ −α
/// ⇔ K ≥ 1 − α − min(ϕ, 0). Values above 1 mean mobility dominates for
/// every admissible K.
double dominance_boundary_K(double alpha, double phi);

/// Generalized boundary: min(K+L, K+ϕ, 1) − 1 ≥ −α ⇔ K ≥ 1 − α − min(L, ϕ)
/// (the saturation branch never decides the boundary since −α ≤ 0 with
/// equality only at α = 0). Reduces to the 2-arg form at L = 0.
double dominance_boundary_K(double alpha, double phi, double L);

/// One point of the antenna/backhaul panel at fixed (α, K).
struct FrontierPoint {
  double phi = 0.0;
  double L = 0.0;
  double exponent = 0.0;           // capacity exponent at this point
  bool mobility_dominant = false;  // Θ(1/f) beats the infrastructure term
  InfraBottleneck bottleneck = InfraBottleneck::kBackbone;
};

/// The generalized panel: capacity over (ϕ, L) at fixed (α, K).
///
/// Layout contract: `grid[li * phi_steps + pi]` — ϕ is the fast axis, L the
/// slow one. Use `at(pi, li)`; it CHECKs bounds.
struct FrontierDiagram {
  double alpha = 0.0;
  double K = 0.0;
  double phi_lo = -1.0, phi_hi = 1.0;  // ϕ grid range
  double l_lo = 0.0, l_hi = 1.0;       // L grid range
  std::vector<FrontierPoint> grid;
  std::size_t phi_steps = 0;
  std::size_t l_steps = 0;

  const FrontierPoint& at(std::size_t pi, std::size_t li) const;
};

/// Computes the antenna/backhaul panel on a uniform grid ϕ ∈ [−1, 1],
/// L ∈ [0, 1] at fixed (α, K).
FrontierDiagram compute_frontier_diagram(double alpha, double K,
                                         std::size_t phi_steps = 11,
                                         std::size_t l_steps = 11);

/// ASCII rendering of a Figure-3 panel (rows = K descending, cols = α
/// ascending; 'M' mobility-dominant, 'I' infrastructure-dominant).
std::string render_ascii(const PhaseDiagram& d);

/// ASCII rendering of an antenna/backhaul panel (rows = L descending,
/// cols = ϕ ascending; 'M' mobility-dominant, 'A' antenna-limited,
/// 'W' wired-backbone-limited, 'S' saturated).
std::string render_ascii(const FrontierDiagram& d);

}  // namespace manetcap::capacity
