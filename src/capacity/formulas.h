// Closed-form capacity laws — the theory side of Table I, generalized to
// multi-antenna / backhaul-limited base stations.
//
// Per-node capacity in exponents of n (log factors suppressed):
//   mobility term        Θ(1/f)                     → −α
//   infrastructure term  Θ(min(k·l/n, k²c/n, 1))·Θ(1/n)… see below
//   clustered no-BS      Θ(√(m/(n²·log m)))         → M/2 − 1
//
// With l = n^L antennas per BS (Jeong & Shin, arXiv:1402.2042) the
// infrastructure term is Θ(min(k·l, k²c, n)/n):
//   k·l  = n^(K+L)  — the access phase: each BS serves ≤ l simultaneous
//                     uplink/downlink streams;
//   k²c  = n^(K+ϕ)  — the wired backbone: k BSs × per-edge bandwidth
//                     c = n^ϕ/k, so k²c = k·µ_c = n^(K+ϕ);
//   n               — saturation: per-node capacity is at most Θ(1).
// Exponent: min(K+L, K+ϕ, 1) − 1. At L = 0 (the paper's single-antenna
// BS) this reduces to the paper's K + min(ϕ, 0) − 1 since K ≤ 1.
//
// The single-antenna bottleneck sits in the wired backbone when ϕ < 0 and
// in the wireless access phase when ϕ ≥ 0, where µ_c = k·c(n) = n^ϕ is the
// aggregate wired bandwidth per BS. (The paper's prose says the switch is
// at ϕ = 1; its own capacity expression and Figure 3 put it at ϕ = 0 — see
// DESIGN.md. We implement ϕ = 0, and bench/ablation_phi measures it.)
#pragma once

#include <string>

#include "capacity/regimes.h"
#include "net/params.h"

namespace manetcap::capacity {

/// One Table I row: a capacity law with its optimal transmission range.
struct CapacityLaw {
  MobilityRegime regime = MobilityRegime::kStrong;
  bool with_bs = false;
  double exponent = 0.0;      // λ = Θ(n^exponent · polylog)
  double rt_exponent = 0.0;   // optimal R_T = Θ(n^rt_exponent · polylog)
  std::string expression;     // e.g. "Θ(1/f) + Θ(min(k²c/n, k/n))"
  std::string rt_expression;  // e.g. "Θ(1/√n)"
};

/// Which branch of min(k·l, k²c, n) binds the infrastructure term.
enum class InfraBottleneck {
  kBackbone,   // k²c smallest: wired edges are the constraint (K+ϕ binds)
  kAntenna,    // k·l smallest: BS access streams are the constraint (K+L)
  kSaturated,  // n smallest: per-node Θ(1) cap — infrastructure is "free"
};

std::string to_string(InfraBottleneck b);

/// Exponent of the mobility term Θ(1/f(n)).
double mobility_exponent(double alpha);

/// Exponent of the single-antenna infrastructure term Θ(min(k²c/n, k/n)).
/// Equivalent to the 3-arg overload at L = 0.
double infrastructure_exponent(double K, double phi);

/// Exponent of the generalized infrastructure term Θ(min(k·l, k²c, n)/n)
/// = min(K+L, K+ϕ, 1) − 1.
double infrastructure_exponent(double K, double phi, double L);

/// The binding branch of the generalized infrastructure term. Ties prefer
/// kAntenna over kBackbone (matching ϕ ≥ 0 ⇒ access-limited at L = 0) and
/// kAntenna/kBackbone over kSaturated.
InfraBottleneck infrastructure_bottleneck(double K, double phi, double L);

/// Exponent of the clustered no-BS capacity Θ(√(m/(n² log m))).
double clustered_no_bs_exponent(double M);

/// True when the single-antenna infrastructure bottleneck is the wired
/// backbone (ϕ < 0), false when it is the wireless access phase.
bool backbone_limited(double phi);

/// The full Table I law for a parameter point (regime classified from the
/// exponents; set p.with_bs accordingly). In the weak/trivial regimes the
/// with-BS law is max(infrastructure, clustered no-BS): base stations can
/// always be ignored, so they never make the order capacity worse.
CapacityLaw capacity_law(const net::ScalingParams& p);

/// Theoretical per-node capacity exponent — the single number the scaling
/// sweeps regress against.
double capacity_exponent(const net::ScalingParams& p);

/// Whether mobility or infrastructure dominates (Remark 10) for a
/// strong-mobility point; meaningless in weak/trivial regimes where only
/// infrastructure carries inter-cluster traffic.
bool mobility_dominant(double alpha, double K, double phi);

/// Generalized-model overload: antennas shift the access branch to K + L.
bool mobility_dominant(double alpha, double K, double phi, double L);

}  // namespace manetcap::capacity
