// Closed-form capacity laws — the theory side of Table I.
//
// Per-node capacity in exponents of n (log factors suppressed):
//   mobility term        Θ(1/f)               → −α
//   infrastructure term  Θ(min(k²c/n, k/n))   → K + min(ϕ, 0) − 1
//   clustered no-BS      Θ(√(m/(n²·log m)))   → M/2 − 1
// The infrastructure bottleneck sits in the wired backbone when ϕ < 0 and
// in the wireless access phase when ϕ ≥ 0, where µ_c = k·c(n) = n^ϕ is the
// aggregate wired bandwidth per BS. (The paper's prose says the switch is
// at ϕ = 1; its own capacity expression and Figure 3 put it at ϕ = 0 — see
// DESIGN.md. We implement ϕ = 0, and bench/ablation_phi measures it.)
#pragma once

#include <string>

#include "capacity/regimes.h"
#include "net/params.h"

namespace manetcap::capacity {

/// One Table I row: a capacity law with its optimal transmission range.
struct CapacityLaw {
  MobilityRegime regime = MobilityRegime::kStrong;
  bool with_bs = false;
  double exponent = 0.0;      // λ = Θ(n^exponent · polylog)
  double rt_exponent = 0.0;   // optimal R_T = Θ(n^rt_exponent · polylog)
  std::string expression;     // e.g. "Θ(1/f) + Θ(min(k²c/n, k/n))"
  std::string rt_expression;  // e.g. "Θ(1/√n)"
};

/// Exponent of the mobility term Θ(1/f(n)).
double mobility_exponent(double alpha);

/// Exponent of the infrastructure term Θ(min(k²c/n, k/n)).
double infrastructure_exponent(double K, double phi);

/// Exponent of the clustered no-BS capacity Θ(√(m/(n² log m))).
double clustered_no_bs_exponent(double M);

/// True when the infrastructure bottleneck is the wired backbone
/// (ϕ < 0), false when it is the wireless access phase.
bool backbone_limited(double phi);

/// The full Table I law for a parameter point (regime classified from the
/// exponents; set p.with_bs accordingly).
CapacityLaw capacity_law(const net::ScalingParams& p);

/// Theoretical per-node capacity exponent — the single number the scaling
/// sweeps regress against.
double capacity_exponent(const net::ScalingParams& p);

/// Whether mobility or infrastructure dominates (Remark 10) for a
/// strong-mobility point; meaningless in weak/trivial regimes where only
/// infrastructure carries inter-cluster traffic.
bool mobility_dominant(double alpha, double K, double phi);

}  // namespace manetcap::capacity
