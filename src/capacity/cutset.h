// Cut-set upper bounds on per-node capacity (Lemma 6 / Lemma 7).
//
// For any partition of the torus into I_L and E_L by a closed curve L,
//   λ ≤ ( Σ_{i∈I_L, j∈E_L} μ(i,j) + wired crossing capacity )
//       / #{source–destination pairs crossing L},
// where μ is the S* link capacity (valid as an upper bound because S* is
// order-optimal — Theorem 2 / Remark 7). We evaluate the bound for
// vertical strip cuts (constant-length curves on the torus): wireless
// crossing capacity Θ(n/f) recovers Lemma 4's Θ(1/f), and the wired term
// k_I·k_E·c recovers Lemma 7's Θ(k²c/n).
#pragma once

#include <cstdint>
#include <vector>

#include "net/network.h"

namespace manetcap::capacity {

/// One evaluated cut.
struct CutBound {
  double x = 0.0;                  // cut position (vertical line pair)
  double wireless_capacity = 0.0;  // Σ μ(MS, MS) across the cut
  double access_capacity = 0.0;    // Σ μ(MS, BS) across the cut (Lemma 7
                                   // drops this term; reported anyway)
  double wired_capacity = 0.0;     // k_I·k_E·c(n)
  std::size_t crossing_flows = 0;  // source inside, destination outside
  /// Upper bound on λ from this cut; +inf if no flow crosses.
  double lambda_bound() const;
};

/// Evaluates the Lemma 6/7 bound for a vertical strip cut: the interior is
/// the band x ∈ [x0, x0 + 1/2) (a constant-length cut on the torus).
/// μ values come from the analytic LinkCapacityModel on `net`'s shape.
CutBound evaluate_strip_cut(const net::Network& net,
                            const std::vector<std::uint32_t>& dest,
                            double x0);

/// The tightest bound over `count` evenly spaced strip cuts.
CutBound best_strip_cut(const net::Network& net,
                        const std::vector<std::uint32_t>& dest,
                        std::size_t count = 8);

/// The hop-count upper bound of Lemma 4's proof: a flow whose endpoints'
/// home-points are distance d apart needs at least ⌈d / (2D/f + R_T)⌉
/// wireless transmissions (each mobility leg + transmission covers at most
/// the contact range), the network can serve at most Σ_i busy_i/2 ≈ n·p/2
/// transmissions per unit time, so
///   λ ≤ (total transmission budget) / (Σ_flows min-hops).
/// Independent of the cut-set bound; only meaningful without BSs (wires
/// bypass the hop argument).
struct HopCountBound {
  double total_budget = 0.0;   // Σ_i (airtime_i) / 2 — transmissions/time
  double total_min_hops = 0.0; // Σ_flows minimum hop count
  double lambda_bound() const;
};

HopCountBound hop_count_bound(const net::Network& net,
                              const std::vector<std::uint32_t>& dest);

}  // namespace manetcap::capacity
