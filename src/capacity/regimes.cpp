#include "capacity/regimes.h"

#include <cmath>

#include "util/check.h"

namespace manetcap::capacity {

std::string to_string(MobilityRegime r) {
  switch (r) {
    case MobilityRegime::kStrong:
      return "strong";
    case MobilityRegime::kWeak:
      return "weak";
    case MobilityRegime::kTrivial:
      return "trivial";
  }
  return "?";
}

double strong_statistic_exponent(double alpha, double M) {
  // Cluster-free corresponds to m = n (M = 1).
  return alpha - M / 2.0;
}

double trivial_statistic_exponent(double alpha, double M, double R) {
  return alpha - R - (1.0 - M) / 2.0;
}

MobilityRegime classify_exponents(double alpha, double M, double R) {
  if (strong_statistic_exponent(alpha, M) < 0.0)
    return MobilityRegime::kStrong;
  if (trivial_statistic_exponent(alpha, M, R) > 0.0)
    return MobilityRegime::kTrivial;
  return MobilityRegime::kWeak;
}

MobilityRegime classify(const net::ScalingParams& p) {
  return classify_exponents(p.alpha, p.cluster_free() ? 1.0 : p.M,
                            p.cluster_free() ? 0.0 : p.R);
}

double f_sqrt_gamma(const net::ScalingParams& p) {
  return p.f() * std::sqrt(p.gamma());
}

double f_sqrt_gamma_tilde(const net::ScalingParams& p) {
  MANETCAP_CHECK_MSG(!p.cluster_free(),
                     "gamma_tilde is defined for clustered layouts");
  return p.f() * std::sqrt(p.gamma_tilde());
}

}  // namespace manetcap::capacity
