// Mobility-regime classification (Theorem 1 and Section V).
//
// With γ(n) = log m / m and γ̃(n) = r²·log(n/m)/(n/m):
//   strong  mobility ⇔ f·√γ  = o(1)        (uniformly dense, Thm. 1)
//   weak    mobility ⇔ f·√γ  = ω(1) and f·√γ̃ = o(1)
//   trivial mobility ⇔ f·√γ̃ = ω(log(n/m))
// The regime is a property of the *network scaling*, not of any node's own
// movement (Remark 14): it compares the mobility radius Θ(1/f) against the
// critical connectivity ranges at the global and within-cluster levels.
#pragma once

#include <string>

#include "net/params.h"

namespace manetcap::capacity {

enum class MobilityRegime { kStrong, kWeak, kTrivial };

std::string to_string(MobilityRegime r);

/// Asymptotic classification from exponents alone (log factors resolve the
/// boundaries: an exponent of exactly 0 means the o(1) condition fails).
///   f√γ  ~ n^(α − M/2)            → strong iff α − M/2 < 0
///   f√γ̃ ~ n^(α − R − (1−M)/2)    → trivial iff that exponent > 0
/// The in-between (including boundary) cases are weak.
MobilityRegime classify_exponents(double alpha, double M, double R);

/// Classification of a concrete parameter point (uses the exponents; also
/// exposed for convenience on ScalingParams).
MobilityRegime classify(const net::ScalingParams& p);

/// Finite-n diagnostic values so experiments can report how deep inside a
/// regime an instance sits.
double f_sqrt_gamma(const net::ScalingParams& p);        // f·√γ
double f_sqrt_gamma_tilde(const net::ScalingParams& p);  // f·√γ̃

/// Exponents of the two regime statistics (the quantities classify_…
/// compares against 0).
double strong_statistic_exponent(double alpha, double M);
double trivial_statistic_exponent(double alpha, double M, double R);

}  // namespace manetcap::capacity
