#include "capacity/recommend.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "capacity/formulas.h"
#include "util/check.h"

namespace manetcap::capacity {

double recommended_phi() { return 0.0; }

double recommended_phi(double L, double K) {
  return std::min(L, 1.0 - K);
}

double recommended_L(double phi, double K) {
  return std::max(0.0, std::min(phi, 1.0 - K));
}

double required_K(double target_exponent, double phi) {
  MANETCAP_CHECK_MSG(target_exponent <= 0.0,
                     "per-node capacity exponent cannot be positive");
  return target_exponent + 1.0 - std::min(phi, 0.0);
}

double required_K(double target_exponent, double phi, double L) {
  MANETCAP_CHECK_MSG(target_exponent <= 0.0,
                     "per-node capacity exponent cannot be positive");
  return target_exponent + 1.0 - std::min(L, phi);
}

double infrastructure_worthwhile_K(double alpha, double phi) {
  return 1.0 - alpha - std::min(phi, 0.0);
}

double infrastructure_worthwhile_K(double alpha, double phi, double L) {
  return 1.0 - alpha - std::min(L, phi);
}

bool infrastructure_improves(double alpha, double K, double phi) {
  return infrastructure_exponent(K, phi) > mobility_exponent(alpha);
}

bool infrastructure_improves(double alpha, double K, double phi, double L) {
  return infrastructure_exponent(K, phi, L) > mobility_exponent(alpha);
}

double wired_bandwidth_for_phi(const net::ScalingParams& p, double phi) {
  const double k = static_cast<double>(p.k());
  MANETCAP_CHECK_MSG(k >= 1.0, "no base stations configured");
  const double mu_c = std::pow(static_cast<double>(p.n), phi);
  MANETCAP_CHECK_MSG(std::isfinite(mu_c),
                     "wired_bandwidth_for_phi: n^phi overflows double (n="
                         << p.n << ", phi=" << phi
                         << ") — not a usable wired credit");
  const double c = mu_c / k;
  MANETCAP_CHECK_MSG(
      c == 0.0 || c >= std::numeric_limits<double>::min(),
      "wired_bandwidth_for_phi: n^phi/k underflows to denormal (n="
          << p.n << ", phi=" << phi << ", k=" << p.k()
          << ") — wired credits would silently lose precision");
  return c;
}

double bs_dollars(const net::ScalingParams& p, const BsCostModel& cost) {
  MANETCAP_CHECK_MSG(p.with_bs, "no base stations configured");
  const double k = static_cast<double>(p.k());
  const double l = static_cast<double>(p.l());
  const double mu_c = std::pow(static_cast<double>(p.n), p.phi);
  MANETCAP_CHECK_MSG(std::isfinite(mu_c),
                     "bs_dollars: n^phi overflows double (n=" << p.n
                         << ", phi=" << p.phi << ")");
  const double dollars =
      k * (cost.fixed + cost.per_antenna * l + cost.per_backhaul * mu_c);
  MANETCAP_CHECK_MSG(std::isfinite(dollars),
                     "bs_dollars overflows double (k=" << k << ", l=" << l
                         << ", mu_c=" << mu_c << ")");
  return dollars;
}

double bs_cost_exponent(double K, double phi, double L) {
  // dollars = k·(fixed + per_antenna·n^L + per_backhaul·n^ϕ): the dominant
  // per-BS term is n^max(0, L, ϕ) for any positive coefficients.
  return K + std::max({0.0, L, phi});
}

double capacity_per_dollar_exponent(double alpha, double K, double phi,
                                    double L) {
  const double cap = std::max(mobility_exponent(alpha),
                              infrastructure_exponent(K, phi, L));
  return cap - bs_cost_exponent(K, phi, L);
}

}  // namespace manetcap::capacity
