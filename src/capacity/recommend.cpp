#include "capacity/recommend.h"

#include <algorithm>
#include <cmath>

#include "capacity/formulas.h"
#include "util/check.h"

namespace manetcap::capacity {

double recommended_phi() { return 0.0; }

double required_K(double target_exponent, double phi) {
  MANETCAP_CHECK_MSG(target_exponent <= 0.0,
                     "per-node capacity exponent cannot be positive");
  return target_exponent + 1.0 - std::min(phi, 0.0);
}

double infrastructure_worthwhile_K(double alpha, double phi) {
  return 1.0 - alpha - std::min(phi, 0.0);
}

bool infrastructure_improves(double alpha, double K, double phi) {
  return infrastructure_exponent(K, phi) > mobility_exponent(alpha);
}

double wired_bandwidth_for_phi(const net::ScalingParams& p, double phi) {
  const double k = static_cast<double>(p.k());
  MANETCAP_CHECK_MSG(k >= 1.0, "no base stations configured");
  return std::pow(static_cast<double>(p.n), phi) / k;
}

}  // namespace manetcap::capacity
