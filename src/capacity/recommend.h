// Design-rule helpers derived from the capacity laws — the quantitative
// version of Section IV's "optimal communication schemes and system
// parameters" discussion, extended with the generalized model's
// cost/capacity frontier (arXiv:1402.2042): how many antennas and how much
// backhaul to buy per BS-dollar. Used by examples/infrastructure_planning
// and bench/ext_cost_frontier.
#pragma once

#include "net/params.h"

namespace manetcap::capacity {

/// The order-optimal wired-bandwidth exponent: µ_c = k·c = Θ(1) (ϕ = 0).
/// Less starves the backbone, more is pure waste (Remark 10 discussion;
/// the paper's prose says 1, its own formula says 0 — see DESIGN.md).
double recommended_phi();

/// Generalized model: the smallest ϕ at which the backbone stops binding,
/// ϕ* = min(L, 1 − K) — more backhaul than the antenna branch (K+L) or the
/// saturation cap (1) can use is pure waste. Reduces to 0 at L = 0 (K ≤ 1).
double recommended_phi(double L, double K);

/// The smallest L at which the antenna branch stops binding,
/// L* = max(0, min(ϕ, 1 − K)): extra antennas are useless once the
/// backbone (K+ϕ) or the saturation cap (1) binds, and at ϕ ≤ 0 a single
/// antenna already outruns the starved backbone.
double recommended_L(double phi, double K);

/// Smallest K such that the infrastructure term reaches a target capacity
/// exponent e (per λ = Θ(n^e)) at a given ϕ: K = e + 1 − min(ϕ, 0).
/// Returns a value > 1 when the target is unreachable with k ≤ n.
double required_K(double target_exponent, double phi);

/// Generalized overload: K = e + 1 − min(L, ϕ). Reduces to the 2-arg form
/// at L = 0.
double required_K(double target_exponent, double phi, double L);

/// Smallest K at which infrastructure starts to dominate mobility for a
/// given α (the Figure 3 boundary): K = 1 − α − min(ϕ, 0).
double infrastructure_worthwhile_K(double alpha, double phi);

/// Generalized overload: K = 1 − α − min(L, ϕ).
double infrastructure_worthwhile_K(double alpha, double phi, double L);

/// True when adding the proposed infrastructure (K, ϕ) would improve the
/// order of capacity over pure ad hoc operation at network exponent α.
bool infrastructure_improves(double alpha, double K, double phi);

/// Generalized overload with l = n^L antennas per BS.
bool infrastructure_improves(double alpha, double K, double phi, double L);

/// Per-BS wired bandwidth c(n) realizing ϕ for a concrete instance.
/// CHECKs that n^ϕ/k neither overflows to ±inf/NaN nor underflows to a
/// denormal — a silently non-finite or precision-starved value must not
/// propagate into EngineOptions wired credits.
double wired_bandwidth_for_phi(const net::ScalingParams& p, double phi);

// --- the cost/capacity frontier ----------------------------------------

/// Per-BS dollar cost model: dollars = fixed + per_antenna·l + per_backhaul·µ_c
/// with l = n^L antennas and µ_c = n^ϕ aggregate backhaul per BS. In
/// exponents of n the per-BS cost is Θ(n^max(0, L, ϕ)).
struct BsCostModel {
  double fixed = 1.0;         // site + radio head
  double per_antenna = 1.0;   // per antenna element
  double per_backhaul = 1.0;  // per unit of aggregate wired bandwidth
};

/// Concrete total BS dollars for an instance: k·(fixed + per_antenna·l +
/// per_backhaul·µ_c).
double bs_dollars(const net::ScalingParams& p, const BsCostModel& cost);

/// Exponent of total BS dollars: K + max(0, L, ϕ).
double bs_cost_exponent(double K, double phi, double L);

/// Capacity per BS-dollar in exponents of n: capacity exponent at the
/// point (α, K, ϕ, L) minus the cost exponent. The frontier sweeps this
/// over (ϕ, L) — bench/ext_cost_frontier measures it on the fluid engine.
double capacity_per_dollar_exponent(double alpha, double K, double phi,
                                    double L);

}  // namespace manetcap::capacity
