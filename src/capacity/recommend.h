// Design-rule helpers derived from the capacity laws — the quantitative
// version of Section IV's "optimal communication schemes and system
// parameters" discussion. Used by examples/infrastructure_planning.
#pragma once

#include "net/params.h"

namespace manetcap::capacity {

/// The order-optimal wired-bandwidth exponent: µ_c = k·c = Θ(1) (ϕ = 0).
/// Less starves the backbone, more is pure waste (Remark 10 discussion;
/// the paper's prose says 1, its own formula says 0 — see DESIGN.md).
double recommended_phi();

/// Smallest K such that the infrastructure term reaches a target capacity
/// exponent e (per λ = Θ(n^e)) at a given ϕ: K = e + 1 − min(ϕ, 0).
/// Returns a value > 1 when the target is unreachable with k ≤ n.
double required_K(double target_exponent, double phi);

/// Smallest K at which infrastructure starts to dominate mobility for a
/// given α (the Figure 3 boundary): K = 1 − α − min(ϕ, 0).
double infrastructure_worthwhile_K(double alpha, double phi);

/// True when adding the proposed infrastructure (K, ϕ) would improve the
/// order of capacity over pure ad hoc operation at network exponent α.
bool infrastructure_improves(double alpha, double K, double phi);

/// Per-BS wired bandwidth c(n) realizing ϕ for a concrete instance.
double wired_bandwidth_for_phi(const net::ScalingParams& p, double phi);

}  // namespace manetcap::capacity
