// Umbrella header: the whole manetcap public API in one include.
//
// Layering (bottom to top):
//   util      — checks, tables, CSV, flags, logging
//   geom/rng  — torus geometry, tessellations, spatial hash; PRNG
//   mobility  — s(d) shapes, clustered home-points, mobility processes
//   net       — scaling parameters, network instances, traffic
//   phy/sched — protocol interference model; S*, TDMA, greedy schedulers
//   linkcap   — link capacity μ(i,j), analytic + Monte-Carlo
//   backbone  — wired BS graph load ledgers
//   routing   — schemes A/B/C, L-max-hop, two-hop, static multihop
//   flow      — fluid constraint solver
//   capacity  — regimes, Table I laws, Figure 3, cut-set bounds, design rules
//   analysis  — power-law fits, density fields, connectivity, statistics
//   sim       — fluid evaluator, scaling sweeps, slotted packet simulator
//
// Most applications only need capacity/ + sim/ (see examples/quickstart).
#pragma once

#include "analysis/connectivity.h"   // IWYU pragma: export
#include "analysis/density.h"        // IWYU pragma: export
#include "analysis/loglog_fit.h"     // IWYU pragma: export
#include "analysis/stats.h"          // IWYU pragma: export
#include "backbone/backbone.h"       // IWYU pragma: export
#include "capacity/cutset.h"         // IWYU pragma: export
#include "capacity/formulas.h"       // IWYU pragma: export
#include "capacity/phase_diagram.h"  // IWYU pragma: export
#include "capacity/recommend.h"      // IWYU pragma: export
#include "capacity/regimes.h"        // IWYU pragma: export
#include "flow/constraints.h"        // IWYU pragma: export
#include "geom/hex.h"                // IWYU pragma: export
#include "geom/point.h"              // IWYU pragma: export
#include "geom/spatial_hash.h"       // IWYU pragma: export
#include "geom/tessellation.h"       // IWYU pragma: export
#include "linkcap/link_capacity.h"   // IWYU pragma: export
#include "linkcap/measure.h"         // IWYU pragma: export
#include "mobility/home_points.h"    // IWYU pragma: export
#include "mobility/process.h"        // IWYU pragma: export
#include "mobility/shape.h"          // IWYU pragma: export
#include "net/network.h"             // IWYU pragma: export
#include "net/params.h"              // IWYU pragma: export
#include "net/traffic.h"             // IWYU pragma: export
#include "phy/protocol_model.h"      // IWYU pragma: export
#include "routing/l_hop.h"           // IWYU pragma: export
#include "routing/scheme_a.h"        // IWYU pragma: export
#include "routing/scheme_b.h"        // IWYU pragma: export
#include "routing/scheme_c.h"        // IWYU pragma: export
#include "routing/static_multihop.h" // IWYU pragma: export
#include "routing/two_hop.h"         // IWYU pragma: export
#include "rng/rng.h"                 // IWYU pragma: export
#include "sched/greedy.h"            // IWYU pragma: export
#include "sched/sstar.h"             // IWYU pragma: export
#include "sched/tdma_cell.h"         // IWYU pragma: export
#include "sim/fluid.h"               // IWYU pragma: export
#include "sim/slotsim.h"             // IWYU pragma: export
#include "sim/sweep.h"               // IWYU pragma: export
