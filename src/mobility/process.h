// Ergodic mobility processes with stationary distribution φ(X − X^h)
// around fixed home-points (Definition 2).
//
// The paper's capacity results depend on the mobility process only through
// its stationary distribution (Lemma 2) — so we ship three processes:
//
//  * IidStationaryMobility — fresh stationary draw per slot (exact φ; the
//    i.i.d. mobility of Neely–Modiano as a special case, Remark 4);
//  * BoundedRandomWalk — reflected random walk in the mobility disk
//    (stationary ≈ uniform disk);
//  * PullHomeMobility — discrete Ornstein–Uhlenbeck pull toward the
//    home-point, truncated to the mobility disk (smooth, correlated paths).
//
// All displacements are expressed on the normalized torus: the mobility
// radius is D/f(n) for shape support D.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "geom/point.h"
#include "mobility/shape.h"
#include "rng/rng.h"
#include "util/binio.h"

namespace manetcap::mobility {

/// Slot-stepped mobility: positions() is valid after construction and is
/// refreshed by each step(); realizations are deterministic given the seed.
class MobilityProcess {
 public:
  virtual ~MobilityProcess() = default;

  /// Number of mobile nodes.
  virtual std::size_t size() const = 0;

  /// Advances one time slot.
  virtual void step() = 0;

  /// Current node positions (torus coordinates), size() entries.
  virtual const std::vector<geom::Point>& positions() const = 0;

  virtual std::string name() const = 0;

  /// Checkpoint support: appends the evolving state (RNG stream, current
  /// positions and, where present, home offsets — never the immutable
  /// construction parameters) to `out` / restores it from `r`. A process
  /// restored into a like-constructed instance continues the identical
  /// trajectory bit-for-bit.
  virtual void save_state(std::vector<std::uint8_t>& out) const = 0;
  virtual void load_state(util::binio::ByteReader& r) = 0;
};

/// Fresh i.i.d. stationary draw every slot: X_i(t) = X_i^h + V/f, V ~ s.
class IidStationaryMobility final : public MobilityProcess {
 public:
  IidStationaryMobility(std::vector<geom::Point> home_points,
                        const Shape& shape, double inv_f,
                        std::uint64_t seed);

  std::size_t size() const override { return home_.size(); }
  void step() override;
  const std::vector<geom::Point>& positions() const override { return pos_; }
  std::string name() const override { return "iid-stationary"; }
  void save_state(std::vector<std::uint8_t>& out) const override;
  void load_state(util::binio::ByteReader& r) override;

 private:
  std::vector<geom::Point> home_;
  const Shape* shape_;
  double inv_f_;
  rng::Xoshiro256 rng_;
  std::vector<geom::Point> pos_;
};

/// Reflected random walk within the disk of radius `support·inv_f` around
/// the home-point; per-slot step length is a fixed fraction of the radius.
class BoundedRandomWalk final : public MobilityProcess {
 public:
  /// `step_fraction` is the per-slot step length relative to the mobility
  /// radius (default 0.25 mixes in a handful of slots).
  BoundedRandomWalk(std::vector<geom::Point> home_points, double radius,
                    std::uint64_t seed, double step_fraction = 0.25);

  std::size_t size() const override { return home_.size(); }
  void step() override;
  const std::vector<geom::Point>& positions() const override { return pos_; }
  std::string name() const override { return "bounded-walk"; }
  void save_state(std::vector<std::uint8_t>& out) const override;
  void load_state(util::binio::ByteReader& r) override;

 private:
  std::vector<geom::Point> home_;
  double radius_;
  double step_len_;
  rng::Xoshiro256 rng_;
  std::vector<geom::Vec2> offset_;    // displacement from home
  std::vector<geom::Point> pos_;
};

/// Unrestricted Brownian motion on the torus: X ← X + σ·N(0, I) wrapped.
/// Stationary distribution uniform on O — the classical fully-mixing
/// mobility (Grossglauser–Tse / Brownian models of Remark 4), i.e. the
/// f(n) = Θ(1), m = n special case of the paper's model.
class BrownianTorusMobility final : public MobilityProcess {
 public:
  /// `sigma` is the per-slot displacement scale (default 0.05: the torus
  /// mixes in a few hundred slots).
  BrownianTorusMobility(std::vector<geom::Point> start, std::uint64_t seed,
                        double sigma = 0.05);

  std::size_t size() const override { return pos_.size(); }
  void step() override;
  const std::vector<geom::Point>& positions() const override { return pos_; }
  std::string name() const override { return "brownian-torus"; }
  void save_state(std::vector<std::uint8_t>& out) const override;
  void load_state(util::binio::ByteReader& r) override;

 private:
  double sigma_;
  rng::Xoshiro256 rng_;
  std::vector<geom::Point> pos_;
};

/// AR(1) pull toward home: V ← ρ·V + σ·N(0, I), truncated to the mobility
/// disk. A discrete Ornstein–Uhlenbeck process with correlated sample paths.
class PullHomeMobility final : public MobilityProcess {
 public:
  PullHomeMobility(std::vector<geom::Point> home_points, double radius,
                   std::uint64_t seed, double rho = 0.8);

  std::size_t size() const override { return home_.size(); }
  void step() override;
  const std::vector<geom::Point>& positions() const override { return pos_; }
  std::string name() const override { return "pull-home-ar1"; }
  void save_state(std::vector<std::uint8_t>& out) const override;
  void load_state(util::binio::ByteReader& r) override;

 private:
  std::vector<geom::Point> home_;
  double radius_;
  double rho_;
  double sigma_;
  rng::Xoshiro256 rng_;
  std::vector<geom::Vec2> offset_;
  std::vector<geom::Point> pos_;
};

}  // namespace manetcap::mobility
