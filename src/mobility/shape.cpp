#include "mobility/shape.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace manetcap::mobility {

namespace {
constexpr int kCdfGrid = 4096;   // fine grid for the radial CDF
constexpr int kInvCdf = 1024;    // inverse-CDF table entries
constexpr int kEtaGrid = 128;    // η(x) sample points over [0, 2D]
constexpr int kEtaQuad = 192;    // Cartesian quadrature points per axis
}  // namespace

std::string to_string(ShapeKind kind) {
  switch (kind) {
    case ShapeKind::kUniformDisk:
      return "uniform-disk";
    case ShapeKind::kTriangular:
      return "triangular";
    case ShapeKind::kQuadratic:
      return "quadratic";
  }
  return "?";
}

Shape::Shape(ShapeKind kind, double support)
    : kind_(kind), support_(support) {
  MANETCAP_CHECK_MSG(support > 0.0, "shape support must be positive");
  build_radial_cdf();
  build_eta_table();
}

double Shape::density(double d) const {
  if (d < 0.0) d = -d;
  if (d >= support_) return 0.0;
  const double t = d / support_;
  switch (kind_) {
    case ShapeKind::kUniformDisk:
      return 1.0;
    case ShapeKind::kTriangular:
      return 1.0 - t;
    case ShapeKind::kQuadratic:
      return 1.0 - t * t;
  }
  return 0.0;
}

double Shape::normalization() const {
  const double d2 = support_ * support_;
  switch (kind_) {
    case ShapeKind::kUniformDisk:
      return M_PI * d2;
    case ShapeKind::kTriangular:
      return M_PI * d2 / 3.0;
    case ShapeKind::kQuadratic:
      return M_PI * d2 / 2.0;
  }
  return 0.0;
}

void Shape::build_radial_cdf() {
  // F(r) = ∫₀ʳ s(t)·2πt dt, trapezoid on a fine grid, then inverted.
  std::vector<double> cdf(kCdfGrid + 1, 0.0);
  const double h = support_ / kCdfGrid;
  double acc = 0.0;
  double prev = 0.0;  // integrand s(t)·2πt at t=0 is 0
  for (int i = 1; i <= kCdfGrid; ++i) {
    const double t = i * h;
    const double cur = density(t) * 2.0 * M_PI * t;
    acc += 0.5 * (prev + cur) * h;
    cdf[i] = acc;
    prev = cur;
  }
  const double total = cdf.back();
  MANETCAP_CHECK(total > 0.0);

  inv_cdf_.assign(kInvCdf, 0.0);
  int j = 0;
  for (int i = 0; i < kInvCdf; ++i) {
    const double target = total * i / (kInvCdf - 1);
    while (j < kCdfGrid && cdf[j + 1] < target) ++j;
    // Linear interpolation within [j, j+1].
    const double lo = cdf[j], hi = cdf[j + 1];
    const double frac = hi > lo ? (target - lo) / (hi - lo) : 0.0;
    inv_cdf_[i] = (j + frac) * h;
  }
  inv_cdf_.back() = support_;
}

geom::Vec2 Shape::sample_displacement(rng::Xoshiro256& g) const {
  const double u = rng::uniform01(g) * (kInvCdf - 1);
  const int i = std::min(static_cast<int>(u), kInvCdf - 2);
  const double frac = u - i;
  const double r = inv_cdf_[i] * (1.0 - frac) + inv_cdf_[i + 1] * frac;
  const double theta = rng::uniform(g, 0.0, 2.0 * M_PI);
  return {r * std::cos(theta), r * std::sin(theta)};
}

void Shape::build_eta_table() {
  // η(x) = ∫ s(‖X‖)·s(‖X − (x,0)‖) dX, midpoint rule over the support disk.
  eta_table_.assign(kEtaGrid, 0.0);
  const double h = 2.0 * support_ / kEtaQuad;
  const double cell = h * h;
  for (int ix = 0; ix < kEtaGrid; ++ix) {
    const double x = 2.0 * support_ * ix / (kEtaGrid - 1);
    double acc = 0.0;
    for (int a = 0; a < kEtaQuad; ++a) {
      const double px = -support_ + (a + 0.5) * h;
      for (int b = 0; b < kEtaQuad; ++b) {
        const double py = -support_ + (b + 0.5) * h;
        const double s1 = density(std::sqrt(px * px + py * py));
        if (s1 == 0.0) continue;
        const double dx = px - x;
        acc += s1 * density(std::sqrt(dx * dx + py * py));
      }
    }
    eta_table_[ix] = acc * cell;
  }
}

double Shape::eta(double x) const {
  if (x < 0.0) x = -x;
  const double span = 2.0 * support_;
  if (x >= span) return 0.0;
  const double u = x / span * (kEtaGrid - 1);
  const int i = std::min(static_cast<int>(u), kEtaGrid - 2);
  const double frac = u - i;
  return eta_table_[i] * (1.0 - frac) + eta_table_[i + 1] * frac;
}

double disk_lens_area(double R, double dist) {
  MANETCAP_CHECK(R >= 0.0 && dist >= 0.0);
  if (dist >= 2.0 * R) return 0.0;
  const double half = dist / 2.0;
  return 2.0 * R * R * std::acos(half / R) -
         half * std::sqrt(4.0 * R * R - dist * dist);
}

}  // namespace manetcap::mobility
