#include "mobility/home_points.h"

#include "util/check.h"

namespace manetcap::mobility {

std::vector<std::vector<std::uint32_t>> HomePointLayout::members_by_cluster()
    const {
  std::vector<std::vector<std::uint32_t>> out(cluster_centers.size());
  for (std::uint32_t i = 0; i < points.size(); ++i)
    out[cluster_of[i]].push_back(i);
  return out;
}

HomePointLayout place_home_points(std::size_t count, const ClusterSpec& spec,
                                  rng::Xoshiro256& g) {
  MANETCAP_CHECK_MSG(spec.num_clusters >= 1, "need at least one cluster");
  MANETCAP_CHECK(spec.radius >= 0.0);

  std::vector<geom::Point> centers(spec.num_clusters);
  for (auto& c : centers) c = rng::uniform_point(g);

  if (spec.radius == 0.0 && spec.num_clusters == count) {
    // Cluster-free layout: one point per center, bijectively, so distinct
    // nodes never coincide (random assignment would create ~n/2 ties).
    HomePointLayout layout;
    layout.cluster_centers = centers;
    layout.cluster_radius = 0.0;
    layout.points = centers;
    layout.cluster_of.resize(count);
    for (std::uint32_t i = 0; i < count; ++i) layout.cluster_of[i] = i;
    return layout;
  }
  return place_in_clusters(count, centers, spec.radius, g);
}

HomePointLayout place_in_clusters(std::size_t count,
                                  const std::vector<geom::Point>& centers,
                                  double radius, rng::Xoshiro256& g) {
  MANETCAP_CHECK(!centers.empty());
  HomePointLayout layout;
  layout.cluster_centers = centers;
  layout.cluster_radius = radius;
  layout.points.resize(count);
  layout.cluster_of.resize(count);
  for (std::size_t i = 0; i < count; ++i) {
    const auto c =
        static_cast<std::uint32_t>(rng::uniform_index(g, centers.size()));
    layout.cluster_of[i] = c;
    layout.points[i] = radius > 0.0
                           ? rng::uniform_in_disk(g, centers[c], radius)
                           : centers[c];
  }
  return layout;
}

}  // namespace manetcap::mobility
