#include "mobility/process.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace manetcap::mobility {

IidStationaryMobility::IidStationaryMobility(
    std::vector<geom::Point> home_points, const Shape& shape, double inv_f,
    std::uint64_t seed)
    : home_(std::move(home_points)),
      shape_(&shape),
      inv_f_(inv_f),
      rng_(seed),
      pos_(home_.size()) {
  MANETCAP_CHECK(inv_f > 0.0 && inv_f <= 1.0);
  step();
}

void IidStationaryMobility::step() {
  for (std::size_t i = 0; i < home_.size(); ++i) {
    geom::Vec2 v = shape_->sample_displacement(rng_) * inv_f_;
    pos_[i] = home_[i].displaced(v);
  }
}

BoundedRandomWalk::BoundedRandomWalk(std::vector<geom::Point> home_points,
                                     double radius, std::uint64_t seed,
                                     double step_fraction)
    : home_(std::move(home_points)),
      radius_(radius),
      step_len_(radius * step_fraction),
      rng_(seed),
      offset_(home_.size()),
      pos_(home_.size()) {
  MANETCAP_CHECK(radius > 0.0);
  MANETCAP_CHECK(step_fraction > 0.0 && step_fraction <= 1.0);
  // Start from the stationary (uniform-disk) law so measurements need no
  // burn-in.
  for (std::size_t i = 0; i < home_.size(); ++i) {
    double r = radius_ * std::sqrt(rng::uniform01(rng_));
    double th = rng::uniform(rng_, 0.0, 2.0 * M_PI);
    offset_[i] = {r * std::cos(th), r * std::sin(th)};
    pos_[i] = home_[i].displaced(offset_[i]);
  }
}

void BoundedRandomWalk::step() {
  for (std::size_t i = 0; i < home_.size(); ++i) {
    double th = rng::uniform(rng_, 0.0, 2.0 * M_PI);
    geom::Vec2 cand = offset_[i] + geom::Vec2{step_len_ * std::cos(th),
                                              step_len_ * std::sin(th)};
    double norm = cand.norm();
    if (norm > radius_) {
      // Radial reflection at the boundary keeps the uniform stationary law.
      cand = cand * ((2.0 * radius_ - norm) / norm);
      if (cand.norm() > radius_) cand = cand * (radius_ / cand.norm());
    }
    offset_[i] = cand;
    pos_[i] = home_[i].displaced(cand);
  }
}

BrownianTorusMobility::BrownianTorusMobility(std::vector<geom::Point> start,
                                             std::uint64_t seed,
                                             double sigma)
    : sigma_(sigma), rng_(seed), pos_(std::move(start)) {
  MANETCAP_CHECK(sigma > 0.0);
}

void BrownianTorusMobility::step() {
  for (auto& p : pos_) {
    p = p.displaced(
        {sigma_ * rng::normal(rng_), sigma_ * rng::normal(rng_)});
  }
}

PullHomeMobility::PullHomeMobility(std::vector<geom::Point> home_points,
                                   double radius, std::uint64_t seed,
                                   double rho)
    : home_(std::move(home_points)),
      radius_(radius),
      rho_(rho),
      // σ chosen so the untruncated stationary std-dev is radius/2.5:
      // Var = σ²/(1−ρ²), so σ = (radius/2.5)·√(1−ρ²). Truncation then only
      // clips a small tail.
      sigma_(radius / 2.5 * std::sqrt(1.0 - rho * rho)),
      rng_(seed),
      offset_(home_.size()),
      pos_(home_.size()) {
  MANETCAP_CHECK(radius > 0.0);
  MANETCAP_CHECK(rho > 0.0 && rho < 1.0);
  for (std::size_t i = 0; i < home_.size(); ++i) {
    offset_[i] = {0.0, 0.0};
    pos_[i] = home_[i];
  }
  // Mix to (approximate) stationarity; the AR(1) memory decays as ρ^t, so
  // the burn-in must scale with the mixing time: ρ^T ≤ ε needs
  // T ≥ log ε / log ρ. A fixed 32 steps (the historical choice) leaves
  // ρ = 0.99 at 0.99³² ≈ 0.72 of its initial bias — nowhere near
  // stationary. Floor 32 keeps the default ρ = 0.8 bit-identical
  // (⌈log 1e−3 / log 0.8⌉ = 31 < 32); the cap bounds pathological ρ → 1.
  const int burn_in = static_cast<int>(std::clamp(
      std::ceil(std::log(1e-3) / std::log(rho_)), 32.0, 2048.0));
  for (int t = 0; t < burn_in; ++t) step();
}

void PullHomeMobility::step() {
  for (std::size_t i = 0; i < home_.size(); ++i) {
    geom::Vec2 cand = offset_[i] * rho_ +
                      geom::Vec2{sigma_ * rng::normal(rng_),
                                 sigma_ * rng::normal(rng_)};
    double norm = cand.norm();
    if (norm > radius_) cand = cand * (radius_ / norm);
    offset_[i] = cand;
    pos_[i] = home_[i].displaced(cand);
  }
}

}  // namespace manetcap::mobility
