#include "mobility/process.h"

#include <algorithm>
#include <array>
#include <cmath>

#include "util/check.h"

namespace manetcap::mobility {

namespace {

// Per-process checkpoint blobs: RNG stream (4×u64 fixed) plus the evolving
// coordinate vectors as fixed-width f64 pairs. Sizes are length-prefixed
// and validated against the restoring instance, so a blob from a
// differently-sized run fails loudly instead of silently misaligning.
using util::binio::ByteReader;
using util::binio::get_f64;
using util::binio::put_f64;
using util::binio::put_u64_fixed;
using util::binio::put_varint;

void put_rng(std::vector<std::uint8_t>& out, const rng::Xoshiro256& g) {
  for (std::uint64_t w : g.state()) put_u64_fixed(out, w);
}

void get_rng(ByteReader& r, rng::Xoshiro256& g) {
  std::array<std::uint64_t, 4> s;
  for (auto& w : s) w = r.u64_fixed();
  g.set_state(s);
}

template <class V>  // geom::Point or geom::Vec2 (both {double x, y})
void put_coords(std::vector<std::uint8_t>& out, const std::vector<V>& v) {
  put_varint(out, v.size());
  for (const V& p : v) {
    put_f64(out, p.x);
    put_f64(out, p.y);
  }
}

template <class V>
void get_coords(ByteReader& r, std::vector<V>& v) {
  MANETCAP_CHECK_MSG(r.varint() == v.size(),
                     r.label << ": mobility state size mismatch");
  for (V& p : v) {
    p.x = get_f64(r);
    p.y = get_f64(r);
  }
}

}  // namespace

IidStationaryMobility::IidStationaryMobility(
    std::vector<geom::Point> home_points, const Shape& shape, double inv_f,
    std::uint64_t seed)
    : home_(std::move(home_points)),
      shape_(&shape),
      inv_f_(inv_f),
      rng_(seed),
      pos_(home_.size()) {
  MANETCAP_CHECK(inv_f > 0.0 && inv_f <= 1.0);
  step();
}

void IidStationaryMobility::step() {
  for (std::size_t i = 0; i < home_.size(); ++i) {
    geom::Vec2 v = shape_->sample_displacement(rng_) * inv_f_;
    pos_[i] = home_[i].displaced(v);
  }
}

void IidStationaryMobility::save_state(std::vector<std::uint8_t>& out) const {
  put_rng(out, rng_);
  put_coords(out, pos_);
}

void IidStationaryMobility::load_state(ByteReader& r) {
  get_rng(r, rng_);
  get_coords(r, pos_);
}

BoundedRandomWalk::BoundedRandomWalk(std::vector<geom::Point> home_points,
                                     double radius, std::uint64_t seed,
                                     double step_fraction)
    : home_(std::move(home_points)),
      radius_(radius),
      step_len_(radius * step_fraction),
      rng_(seed),
      offset_(home_.size()),
      pos_(home_.size()) {
  MANETCAP_CHECK(radius > 0.0);
  MANETCAP_CHECK(step_fraction > 0.0 && step_fraction <= 1.0);
  // Start from the stationary (uniform-disk) law so measurements need no
  // burn-in.
  for (std::size_t i = 0; i < home_.size(); ++i) {
    double r = radius_ * std::sqrt(rng::uniform01(rng_));
    double th = rng::uniform(rng_, 0.0, 2.0 * M_PI);
    offset_[i] = {r * std::cos(th), r * std::sin(th)};
    pos_[i] = home_[i].displaced(offset_[i]);
  }
}

void BoundedRandomWalk::step() {
  for (std::size_t i = 0; i < home_.size(); ++i) {
    double th = rng::uniform(rng_, 0.0, 2.0 * M_PI);
    geom::Vec2 cand = offset_[i] + geom::Vec2{step_len_ * std::cos(th),
                                              step_len_ * std::sin(th)};
    double norm = cand.norm();
    if (norm > radius_) {
      // Radial reflection at the boundary keeps the uniform stationary law.
      cand = cand * ((2.0 * radius_ - norm) / norm);
      if (cand.norm() > radius_) cand = cand * (radius_ / cand.norm());
    }
    offset_[i] = cand;
    pos_[i] = home_[i].displaced(cand);
  }
}

void BoundedRandomWalk::save_state(std::vector<std::uint8_t>& out) const {
  put_rng(out, rng_);
  put_coords(out, offset_);
  put_coords(out, pos_);
}

void BoundedRandomWalk::load_state(ByteReader& r) {
  get_rng(r, rng_);
  get_coords(r, offset_);
  get_coords(r, pos_);
}

BrownianTorusMobility::BrownianTorusMobility(std::vector<geom::Point> start,
                                             std::uint64_t seed,
                                             double sigma)
    : sigma_(sigma), rng_(seed), pos_(std::move(start)) {
  MANETCAP_CHECK(sigma > 0.0);
}

void BrownianTorusMobility::step() {
  for (auto& p : pos_) {
    p = p.displaced(
        {sigma_ * rng::normal(rng_), sigma_ * rng::normal(rng_)});
  }
}

void BrownianTorusMobility::save_state(std::vector<std::uint8_t>& out) const {
  put_rng(out, rng_);
  put_coords(out, pos_);
}

void BrownianTorusMobility::load_state(ByteReader& r) {
  get_rng(r, rng_);
  get_coords(r, pos_);
}

PullHomeMobility::PullHomeMobility(std::vector<geom::Point> home_points,
                                   double radius, std::uint64_t seed,
                                   double rho)
    : home_(std::move(home_points)),
      radius_(radius),
      rho_(rho),
      // σ chosen so the untruncated stationary std-dev is radius/2.5:
      // Var = σ²/(1−ρ²), so σ = (radius/2.5)·√(1−ρ²). Truncation then only
      // clips a small tail.
      sigma_(radius / 2.5 * std::sqrt(1.0 - rho * rho)),
      rng_(seed),
      offset_(home_.size()),
      pos_(home_.size()) {
  MANETCAP_CHECK(radius > 0.0);
  MANETCAP_CHECK(rho > 0.0 && rho < 1.0);
  for (std::size_t i = 0; i < home_.size(); ++i) {
    offset_[i] = {0.0, 0.0};
    pos_[i] = home_[i];
  }
  // Mix to (approximate) stationarity; the AR(1) memory decays as ρ^t, so
  // the burn-in must scale with the mixing time: ρ^T ≤ ε needs
  // T ≥ log ε / log ρ. A fixed 32 steps (the historical choice) leaves
  // ρ = 0.99 at 0.99³² ≈ 0.72 of its initial bias — nowhere near
  // stationary. Floor 32 keeps the default ρ = 0.8 bit-identical
  // (⌈log 1e−3 / log 0.8⌉ = 31 < 32); the cap bounds pathological ρ → 1.
  const int burn_in = static_cast<int>(std::clamp(
      std::ceil(std::log(1e-3) / std::log(rho_)), 32.0, 2048.0));
  for (int t = 0; t < burn_in; ++t) step();
}

void PullHomeMobility::step() {
  for (std::size_t i = 0; i < home_.size(); ++i) {
    geom::Vec2 cand = offset_[i] * rho_ +
                      geom::Vec2{sigma_ * rng::normal(rng_),
                                 sigma_ * rng::normal(rng_)};
    double norm = cand.norm();
    if (norm > radius_) cand = cand * (radius_ / norm);
    offset_[i] = cand;
    pos_[i] = home_[i].displaced(cand);
  }
}

void PullHomeMobility::save_state(std::vector<std::uint8_t>& out) const {
  put_rng(out, rng_);
  put_coords(out, offset_);
  put_coords(out, pos_);
}

void PullHomeMobility::load_state(ByteReader& r) {
  get_rng(r, rng_);
  get_coords(r, offset_);
  get_coords(r, pos_);
}

}  // namespace manetcap::mobility
