// The clustered home-point model (Definition 3).
//
// m(n) = Θ(n^M) cluster centers are placed independently and uniformly on
// the torus; each cluster is a disk of radius r(n) = Θ(n^-R); each of the n
// home-points picks a cluster uniformly at random and then a uniform
// position inside it. m = n with r = 0 degenerates to the cluster-free
// (uniform) layout used by classical MANET models (Remark 4).
#pragma once

#include <cstdint>
#include <vector>

#include "geom/point.h"
#include "rng/rng.h"

namespace manetcap::mobility {

/// Parameters of the clustered model.
struct ClusterSpec {
  std::size_t num_clusters = 1;  // m(n)
  double radius = 0.0;           // r(n), in torus units

  /// Cluster-free layout: every home-point uniform on the torus.
  static ClusterSpec uniform(std::size_t n) { return {n, 0.0}; }
};

/// A sampled home-point layout.
struct HomePointLayout {
  std::vector<geom::Point> cluster_centers;   // size m
  std::vector<geom::Point> points;            // size count
  std::vector<std::uint32_t> cluster_of;      // size count, values < m
  double cluster_radius = 0.0;

  std::size_t num_clusters() const { return cluster_centers.size(); }

  /// Per-cluster member lists (index i → point ids in cluster i).
  std::vector<std::vector<std::uint32_t>> members_by_cluster() const;
};

/// Samples `count` home-points under `spec`. With spec.radius == 0 each
/// "cluster" is a single point, so num_clusters == count gives the uniform
/// layout.
HomePointLayout place_home_points(std::size_t count, const ClusterSpec& spec,
                                  rng::Xoshiro256& g);

/// Samples `count` points reusing existing cluster centers (the paper's BS
/// placement draws Q_j from the *same* clustered model as the MS
/// home-points; reusing centers realizes "distribution of BSs matches the
/// distribution of users").
HomePointLayout place_in_clusters(std::size_t count,
                                  const std::vector<geom::Point>& centers,
                                  double radius, rng::Xoshiro256& g);

}  // namespace manetcap::mobility
