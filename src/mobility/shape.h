// The paper's s(d) function family (Definition 2).
//
// s(d) is an arbitrary non-increasing function with finite support D that
// shapes a node's stationary spatial distribution around its home-point:
// φ(X) ∝ s(f(n)·‖X − X^h‖). The capacity results hold for any such s; we
// provide three concrete shapes and verify the insensitivity empirically.
//
// The class also computes the paper's convolution kernel
//   η(x) = ∫_{R²} s(‖X − x₀‖)·s(‖X‖) dX,  ‖x₀‖ = x        (Corollary 1)
// which governs MS↔MS link capacity: μ(X_i^h, X_j^h) = Θ(f²η(f·d_ij)/n).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "geom/point.h"
#include "rng/rng.h"

namespace manetcap::mobility {

/// Concrete s(d) families. All are non-increasing with support [0, D].
enum class ShapeKind {
  kUniformDisk,  // s(d) = 1                    for d ≤ D
  kTriangular,   // s(d) = 1 − d/D              (cone)
  kQuadratic,    // s(d) = (1 − (d/D)²)         (smooth decay)
};

std::string to_string(ShapeKind kind);

/// A normalized s(·) with support radius D (in *pre-normalization* units;
/// divide displacements by f(n) to land on the unit torus).
class Shape {
 public:
  /// Builds the shape; `support` is D = sup{d : s(d) > 0} (default 1).
  explicit Shape(ShapeKind kind, double support = 1.0);

  ShapeKind kind() const { return kind_; }
  double support() const { return support_; }

  /// Raw (un-normalized) density value s(d); 0 beyond the support.
  double density(double d) const;

  /// Normalization constant ∫_{R²} s(‖X‖) dX (closed form per family).
  double normalization() const;

  /// Samples a planar displacement V with density ∝ s(‖V‖)
  /// (radial inverse-CDF; exact for all three families).
  geom::Vec2 sample_displacement(rng::Xoshiro256& g) const;

  /// η(x) = ∫ s(‖X − x₀‖) s(‖X‖) dX at ‖x₀‖ = x, from a precomputed table
  /// (closed form for kUniformDisk is used to validate the table in tests).
  /// η is non-increasing with support [0, 2D].
  double eta(double x) const;

  /// η(0) = ∫ s², the self-overlap (peak of the kernel).
  double eta0() const { return eta(0.0); }

 private:
  void build_radial_cdf();
  void build_eta_table();

  ShapeKind kind_;
  double support_;
  // Inverse-CDF table for radial sampling: radius at quantile i/(N-1).
  std::vector<double> inv_cdf_;
  // η sampled on a uniform grid over [0, 2D].
  std::vector<double> eta_table_;
};

/// Closed-form lens (intersection) area of two disks with common radius R
/// whose centers are `dist` apart — η for the uniform-disk shape, and a
/// geometric primitive used by tests.
double disk_lens_area(double R, double dist);

}  // namespace manetcap::mobility
