// The wired infrastructure substrate (Section II-B).
//
// All k base stations are pairwise wired with bandwidth c(n); wired links
// never interfere with the wireless channel. Two ledgers are provided:
//
//  * WiredBackbone — exact per-edge load accounting over the complete
//    graph (slot simulator, small k);
//  * GroupedBackbone — group-pair accounting for the fluid model: scheme B
//    spreads each flow uniformly across all edges between the source-side
//    and destination-side BS groups (squarelets in the strong regime,
//    clusters in the weak regime), so only per-group-pair totals matter.
#pragma once

#include <cstdint>
#include <map>
#include <utility>
#include <vector>

namespace manetcap::backbone {

/// Exact per-edge load ledger over the complete BS graph.
class WiredBackbone {
 public:
  WiredBackbone(std::size_t num_bs, double edge_capacity);

  std::size_t num_bs() const { return num_bs_; }
  double edge_capacity() const { return capacity_; }

  /// Accumulates `load` (bps) on the undirected edge {a, b}.
  void add_load(std::uint32_t a, std::uint32_t b, double load);

  double load(std::uint32_t a, std::uint32_t b) const;

  /// Largest per-edge load accumulated so far.
  double max_edge_load() const { return max_load_; }

  /// Largest uniform scale x such that x·load fits capacity on every edge;
  /// +inf when no edge is loaded.
  double max_feasible_scale() const;

  std::size_t num_loaded_edges() const { return loads_.size(); }

 private:
  static std::pair<std::uint32_t, std::uint32_t> key(std::uint32_t a,
                                                     std::uint32_t b);
  std::size_t num_bs_;
  double capacity_;
  double max_load_ = 0.0;
  std::map<std::pair<std::uint32_t, std::uint32_t>, double> loads_;
};

/// Fluid-model ledger: BSs are partitioned into groups; flows between two
/// groups spread uniformly over all |G₁|·|G₂| wired edges between them
/// (|G|·(|G|−1)/2 within a group).
class GroupedBackbone {
 public:
  GroupedBackbone(std::vector<std::size_t> group_sizes, double edge_capacity);

  std::size_t num_groups() const { return sizes_.size(); }
  std::size_t group_size(std::uint32_t g) const { return sizes_[g]; }
  double edge_capacity() const { return capacity_; }

  /// Accumulates `load` between groups g1 and g2 (order irrelevant).
  /// A group pair with zero connecting edges (an empty group, or an
  /// intra-group pair with fewer than 2 BSs) makes the ledger infeasible.
  void add_load(std::uint32_t g1, std::uint32_t g2, double load);

  /// Total load recorded between the two groups.
  double group_load(std::uint32_t g1, std::uint32_t g2) const;

  /// Per-edge load of the most loaded group pair.
  double max_edge_load() const;

  /// Largest uniform scale x with x·(per-edge load) ≤ capacity everywhere;
  /// +inf when nothing is loaded, 0 when load was put on a pair with no
  /// edges.
  double max_feasible_scale() const;

 private:
  double edges_between(std::uint32_t g1, std::uint32_t g2) const;

  std::vector<std::size_t> sizes_;
  double capacity_;
  bool structurally_infeasible_ = false;
  std::map<std::pair<std::uint32_t, std::uint32_t>, double> loads_;
};

}  // namespace manetcap::backbone
