#include "backbone/backbone.h"

#include <algorithm>
#include <limits>

#include "util/check.h"

namespace manetcap::backbone {

WiredBackbone::WiredBackbone(std::size_t num_bs, double edge_capacity)
    : num_bs_(num_bs), capacity_(edge_capacity) {
  MANETCAP_CHECK(num_bs >= 1);
  MANETCAP_CHECK(edge_capacity > 0.0);
}

std::pair<std::uint32_t, std::uint32_t> WiredBackbone::key(std::uint32_t a,
                                                           std::uint32_t b) {
  return a < b ? std::make_pair(a, b) : std::make_pair(b, a);
}

void WiredBackbone::add_load(std::uint32_t a, std::uint32_t b, double load) {
  MANETCAP_CHECK(a < num_bs_ && b < num_bs_);
  MANETCAP_CHECK_MSG(a != b, "no self-edges in the backbone");
  MANETCAP_CHECK(load >= 0.0);
  double& slot = loads_[key(a, b)];
  slot += load;
  max_load_ = std::max(max_load_, slot);
}

double WiredBackbone::load(std::uint32_t a, std::uint32_t b) const {
  auto it = loads_.find(key(a, b));
  return it == loads_.end() ? 0.0 : it->second;
}

double WiredBackbone::max_feasible_scale() const {
  if (max_load_ <= 0.0) return std::numeric_limits<double>::infinity();
  return capacity_ / max_load_;
}

GroupedBackbone::GroupedBackbone(std::vector<std::size_t> group_sizes,
                                 double edge_capacity)
    : sizes_(std::move(group_sizes)), capacity_(edge_capacity) {
  MANETCAP_CHECK(!sizes_.empty());
  MANETCAP_CHECK(edge_capacity > 0.0);
}

double GroupedBackbone::edges_between(std::uint32_t g1,
                                      std::uint32_t g2) const {
  if (g1 == g2) {
    const double s = static_cast<double>(sizes_[g1]);
    return s * (s - 1.0) / 2.0;
  }
  return static_cast<double>(sizes_[g1]) * static_cast<double>(sizes_[g2]);
}

void GroupedBackbone::add_load(std::uint32_t g1, std::uint32_t g2,
                               double load) {
  MANETCAP_CHECK(g1 < sizes_.size() && g2 < sizes_.size());
  MANETCAP_CHECK(load >= 0.0);
  if (load == 0.0) return;
  if (edges_between(g1, g2) <= 0.0) {
    structurally_infeasible_ = true;
    return;
  }
  auto k = g1 < g2 ? std::make_pair(g1, g2) : std::make_pair(g2, g1);
  loads_[k] += load;
}

double GroupedBackbone::group_load(std::uint32_t g1, std::uint32_t g2) const {
  auto k = g1 < g2 ? std::make_pair(g1, g2) : std::make_pair(g2, g1);
  auto it = loads_.find(k);
  return it == loads_.end() ? 0.0 : it->second;
}

double GroupedBackbone::max_edge_load() const {
  double worst = 0.0;
  for (const auto& [pair, total] : loads_) {
    worst = std::max(worst, total / edges_between(pair.first, pair.second));
  }
  return worst;
}

double GroupedBackbone::max_feasible_scale() const {
  if (structurally_infeasible_) return 0.0;
  const double worst = max_edge_load();
  if (worst <= 0.0) return std::numeric_limits<double>::infinity();
  return capacity_ / worst;
}

}  // namespace manetcap::backbone
