// Scaling parameters of the hybrid network (Section II).
//
// Everything in the paper is parameterized by exponents of n:
//   f(n) = n^α      network side length (α ∈ [0, ½]; Remark 1)
//   k    = n^K      number of base stations
//   m    = n^M      number of home-point clusters (M = 1 ⇒ cluster-free)
//   r    = n^-R     cluster radius (0 ≤ R ≤ α, M − 2R < 0)
//   µ_c  = k·c = n^ϕ  aggregate wired bandwidth per BS (c = per-edge)
//   l    = n^L      antennas per BS (generalized model of Jeong & Shin,
//                   arXiv:1402.2042; L = 0 is the paper's single-antenna BS)
//
// ScalingParams maps a concrete n plus those exponents to concrete sizes,
// and exposes the derived quantities the theory uses: γ(n) = log m / m,
// γ̃(n) = r²·log(n/m)/(n/m), the mobility radius D/f, etc.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace manetcap::net {

struct ScalingParams {
  std::size_t n = 1024;  // number of mobile stations

  double alpha = 0.0;  // f = n^alpha
  bool with_bs = true;
  double K = 0.5;      // k = n^K (ignored when !with_bs)
  double M = 1.0;      // m = n^M; M == 1 means cluster-free (m = n, r = 0)
  double R = 0.0;      // r = n^-R
  double phi = 0.0;    // µ_c = k·c = n^phi
  double L = 0.0;      // l = n^L antennas per BS (0 = single-antenna paper
                       // model; ignored when !with_bs)

  /// Mobility-shape support D (pre-normalization constant; Definition 2).
  double shape_support = 1.0;

  // --- derived concrete quantities -------------------------------------

  double f() const;                 // n^alpha ≥ 1
  std::size_t k() const;            // max(1, round(n^K)); 0 when !with_bs
  std::size_t m() const;            // clusters; = n when cluster-free
  double r() const;                 // cluster radius in torus units; 0 if
                                    // cluster-free
  bool cluster_free() const { return M >= 1.0; }

  /// Per-edge wired bandwidth c(n) = n^phi / k (so that k·c = n^phi).
  /// CHECKs that the result is finite and not denormal — a silently
  /// overflowed/underflowed c(n) would otherwise propagate into the
  /// engines' wired-credit token buckets.
  double c() const;

  /// Antennas per BS: max(1, round(n^L)); 1 when !with_bs (identity
  /// multiplier — a network without BSs has no antenna axis).
  std::size_t l() const;

  /// Mobility radius on the normalized torus: D/f(n).
  double mobility_radius() const { return shape_support / f(); }

  /// γ(n) = log m / m — squared critical transmission range for
  /// connectivity among m uniform points (Theorem 1 / [18]).
  double gamma() const;

  /// γ̃(n) = r² · log(n/m) / (n/m) — the within-cluster analogue (§V).
  double gamma_tilde() const;

  /// Human-readable one-liner for harness output.
  std::string describe() const;

  /// Returns violated model assumptions (empty = all good): α ∈ [0, ½],
  /// R ≤ α, M − 2R < 0 unless cluster-free, k = ω(m) when with_bs, …
  /// Finite-n sweeps sometimes probe boundaries, so violations are
  /// reported, not fatal.
  std::vector<std::string> assumption_violations() const;
};

}  // namespace manetcap::net
