#include "net/traffic.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <sstream>

#include "util/check.h"
#include "util/spec.h"

namespace manetcap::net {

std::vector<std::uint32_t> permutation_traffic(std::size_t n,
                                               rng::Xoshiro256& g) {
  MANETCAP_CHECK_MSG(n >= 2, "permutation traffic needs n >= 2");
  std::vector<std::uint32_t> dest(n);
  std::iota(dest.begin(), dest.end(), 0u);
  rng::shuffle(g, dest);
  // Repair fixed points by swapping with a cyclic neighbor; the neighbor
  // cannot itself be a fixed point afterwards because dest[j] == j would
  // have required two fixed points at adjacent slots, which the swap breaks.
  for (std::size_t i = 0; i < n; ++i) {
    if (dest[i] == i) {
      std::size_t j = (i + 1) % n;
      std::swap(dest[i], dest[j]);
    }
  }
  MANETCAP_DCHECK(is_valid_permutation_traffic(dest));
  return dest;
}

bool is_valid_permutation_traffic(const std::vector<std::uint32_t>& dest) {
  std::vector<bool> seen(dest.size(), false);
  for (std::size_t i = 0; i < dest.size(); ++i) {
    std::uint32_t d = dest[i];
    if (d >= dest.size() || d == i || seen[d]) return false;
    seen[d] = true;
  }
  return true;
}

void validate_traffic_dest(const std::vector<std::uint32_t>& dest,
                           std::size_t n, const char* who) {
  MANETCAP_CHECK_MSG(dest.size() == n,
                     who << ": dest must hold one entry per MS ("
                         << dest.size() << " entries for n = " << n << ")");
  for (std::size_t i = 0; i < dest.size(); ++i) {
    MANETCAP_CHECK_MSG(dest[i] < n, who << ": dest[" << i << "] = "
                                        << dest[i]
                                        << " is out of range (n = " << n
                                        << ")");
    MANETCAP_CHECK_MSG(dest[i] != i,
                       who << ": dest[" << i << "] is a self-loop");
  }
}

std::vector<std::uint32_t> dest_of(const std::vector<FlowDemand>& demands) {
  std::vector<std::uint32_t> dest(demands.size());
  for (std::size_t i = 0; i < demands.size(); ++i) dest[i] = demands[i].dst;
  return dest;
}

void validate_demands(const std::vector<FlowDemand>& demands,
                      std::size_t n) {
  MANETCAP_CHECK_MSG(demands.size() == n,
                     "traffic: demand set must hold one flow per MS ("
                         << demands.size() << " flows for n = " << n << ")");
  for (std::size_t i = 0; i < demands.size(); ++i) {
    const FlowDemand& f = demands[i];
    MANETCAP_CHECK_MSG(f.src == i, "traffic: flow " << i
                                       << " must be sourced at MS " << i
                                       << " (got src " << f.src << ")");
    MANETCAP_CHECK_MSG(f.dst < n, "traffic: dest[" << i << "] = " << f.dst
                                      << " is out of range (n = " << n
                                      << ")");
    MANETCAP_CHECK_MSG(f.dst != i,
                       "traffic: dest[" << i << "] is a self-loop");
    MANETCAP_CHECK_MSG(f.size >= 1, "traffic: flow " << i
                                        << " has zero size");
    MANETCAP_CHECK_MSG(std::isfinite(f.on_mean) &&
                           std::isfinite(f.off_mean) && f.on_mean >= 0.0 &&
                           f.off_mean >= 0.0,
                       "traffic: flow " << i
                                        << " has non-finite or negative "
                                           "on/off means");
    MANETCAP_CHECK_MSG((f.on_mean > 0.0) == (f.off_mean > 0.0),
                       "traffic: flow " << i
                                        << " must set both on/off means or "
                                           "neither");
  }
}

const char* to_string(TrafficPattern p) {
  switch (p) {
    case TrafficPattern::kPermutation:
      return "perm";
    case TrafficPattern::kHotspot:
      return "hotspot";
  }
  return "?";
}

namespace {

constexpr const char* kWho = "TrafficSpec";

/// Splits one 'KIND:A,B' clause into its two comma-separated numeric
/// fields, with the grammar's error shape.
void parse_pair(const std::string& args, const std::string& token,
                double* a, double* b) {
  const auto parts = util::spec::split(args, ',');
  MANETCAP_CHECK_MSG(parts.size() == 2, kWho << ": expected two "
                                                "comma-separated values in '"
                                             << token << "'");
  *a = util::spec::parse_f64(kWho, util::spec::trim(parts[0]), token);
  *b = util::spec::parse_f64(kWho, util::spec::trim(parts[1]), token);
}

}  // namespace

bool TrafficSpec::is_default() const {
  return pattern == TrafficPattern::kPermutation && pareto_mean == 0.0 &&
         on_mean == 0.0 && off_mean == 0.0 && max_start == 0;
}

void TrafficSpec::validate() const {
  if (pattern == TrafficPattern::kHotspot) {
    MANETCAP_CHECK_MSG(std::isfinite(hotspot_frac) && hotspot_frac > 0.0 &&
                           hotspot_frac <= 1.0,
                       "TrafficSpec: hotspot fraction " << hotspot_frac
                           << " outside (0, 1]");
    MANETCAP_CHECK_MSG(std::isfinite(hotspot_mass) && hotspot_mass >= 0.0 &&
                           hotspot_mass <= 1.0,
                       "TrafficSpec: hotspot mass " << hotspot_mass
                           << " outside [0, 1]");
  }
  MANETCAP_CHECK_MSG(std::isfinite(pareto_mean) && pareto_mean >= 0.0,
                     "TrafficSpec: pareto mean must be >= 0");
  if (pareto_mean > 0.0) {
    MANETCAP_CHECK_MSG(std::isfinite(pareto_alpha) && pareto_alpha > 1.0,
                       "TrafficSpec: pareto alpha " << pareto_alpha
                           << " must be > 1 (finite mean)");
    MANETCAP_CHECK_MSG(pareto_mean >= 1.0,
                       "TrafficSpec: pareto mean " << pareto_mean
                           << " must be >= 1 packet");
  }
  MANETCAP_CHECK_MSG(std::isfinite(on_mean) && std::isfinite(off_mean) &&
                         on_mean >= 0.0 && off_mean >= 0.0,
                     "TrafficSpec: on/off means must be finite and >= 0");
  MANETCAP_CHECK_MSG((on_mean > 0.0) == (off_mean > 0.0),
                     "TrafficSpec: set both on/off means or neither");
}

TrafficSpec TrafficSpec::parse(const std::string& spec) {
  TrafficSpec out;
  for (const std::string& raw : util::spec::split(spec, ';')) {
    const std::string token = util::spec::trim(raw);
    if (token.empty()) continue;
    const std::size_t colon = token.find(':');
    const std::string kind =
        colon == std::string::npos ? token : token.substr(0, colon);
    const std::string args =
        colon == std::string::npos ? std::string() : token.substr(colon + 1);
    if (kind == "perm") {
      MANETCAP_CHECK_MSG(args.empty(),
                         "TrafficSpec: 'perm' takes no arguments, got '"
                             << token << "'");
      out.pattern = TrafficPattern::kPermutation;
    } else if (kind == "hotspot") {
      out.pattern = TrafficPattern::kHotspot;
      parse_pair(args, token, &out.hotspot_frac, &out.hotspot_mass);
    } else if (kind == "pareto") {
      parse_pair(args, token, &out.pareto_alpha, &out.pareto_mean);
    } else if (kind == "onoff") {
      parse_pair(args, token, &out.on_mean, &out.off_mean);
    } else if (kind == "start") {
      out.max_start = static_cast<std::uint32_t>(
          util::spec::parse_u64(kWho, util::spec::trim(args), token));
    } else {
      MANETCAP_CHECK_MSG(false, "TrafficSpec: unknown clause '"
                                    << kind << "' in '" << token << "'");
    }
  }
  out.validate();
  return out;
}

std::string TrafficSpec::describe() const {
  std::ostringstream os;
  if (pattern == TrafficPattern::kHotspot) {
    os << "hotspot:" << hotspot_frac << "," << hotspot_mass;
  } else {
    os << "perm";
  }
  if (pareto_mean > 0.0) {
    os << "; pareto:" << pareto_alpha << "," << pareto_mean;
  }
  if (on_mean > 0.0) os << "; onoff:" << on_mean << "," << off_mean;
  if (max_start > 0) os << "; start:" << max_start;
  return os.str();
}

void TrafficModel::decorate(std::vector<FlowDemand>& demands,
                            rng::Xoshiro256& g) const {
  // Field-ordered passes keep the draw sequence independent of the
  // destination pattern: sizes, then starts, then the on-off tagging
  // (which consumes no randomness — gates are seeded per flow by the
  // engine).
  if (spec_.pareto_mean > 0.0) {
    const double a = spec_.pareto_alpha;
    const double xm = spec_.pareto_mean * (a - 1.0) / a;
    for (FlowDemand& f : demands) {
      const double u = rng::uniform01(g);
      const double v = xm * std::pow(1.0 - u, -1.0 / a);
      f.size = v >= 9.0e18
                   ? (std::uint64_t{1} << 62)
                   : std::max<std::uint64_t>(
                         1, static_cast<std::uint64_t>(std::ceil(v)));
    }
  }
  if (spec_.max_start > 0) {
    for (FlowDemand& f : demands) {
      f.start = static_cast<std::uint32_t>(
          rng::uniform_index(g, std::uint64_t{spec_.max_start} + 1));
    }
  }
  if (spec_.on_mean > 0.0 && spec_.off_mean > 0.0) {
    for (FlowDemand& f : demands) {
      f.on_mean = spec_.on_mean;
      f.off_mean = spec_.off_mean;
    }
  }
}

namespace {

class PermutationTrafficModel final : public TrafficModel {
 public:
  explicit PermutationTrafficModel(TrafficSpec spec)
      : TrafficModel(spec) {}

  std::vector<FlowDemand> draw(std::size_t n,
                               rng::Xoshiro256& g) const override {
    const auto dest = permutation_traffic(n, g);
    std::vector<FlowDemand> demands(n);
    for (std::size_t i = 0; i < n; ++i) {
      demands[i].src = static_cast<std::uint32_t>(i);
      demands[i].dst = dest[i];
    }
    decorate(demands, g);
    return demands;
  }
};

class HotspotTrafficModel final : public TrafficModel {
 public:
  explicit HotspotTrafficModel(TrafficSpec spec) : TrafficModel(spec) {}

  std::vector<FlowDemand> draw(std::size_t n,
                               rng::Xoshiro256& g) const override {
    MANETCAP_CHECK_MSG(n >= 2, "hotspot traffic needs n >= 2");
    // A strict subset of MSs — at least 1, at most n − 1 — absorbs
    // `hotspot_mass` of the demand; the rest is uniform over non-self
    // peers, so mass 0 degenerates to uniform random destinations.
    const std::size_t h = std::clamp<std::size_t>(
        static_cast<std::size_t>(std::llround(spec_.hotspot_frac *
                                              static_cast<double>(n))),
        1, n - 1);
    std::vector<std::uint32_t> ids(n);
    std::iota(ids.begin(), ids.end(), 0u);
    rng::shuffle(g, ids);  // ids[0..h) are the hotspots
    std::vector<FlowDemand> demands(n);
    for (std::size_t i = 0; i < n; ++i) {
      demands[i].src = static_cast<std::uint32_t>(i);
      std::uint32_t dst;
      if (rng::uniform01(g) < spec_.hotspot_mass) {
        const std::size_t j =
            static_cast<std::size_t>(rng::uniform_index(g, h));
        dst = ids[j];
        if (dst == i) {
          // Deterministic self-repair: the cyclically next hotspot (a
          // different node), or the cyclic neighbor when there is only
          // one hotspot and it is the source itself.
          dst = h > 1 ? ids[(j + 1) % h]
                      : static_cast<std::uint32_t>((i + 1) % n);
        }
      } else {
        const std::uint64_t r = rng::uniform_index(g, n - 1);
        dst = static_cast<std::uint32_t>(r >= i ? r + 1 : r);
      }
      demands[i].dst = dst;
    }
    decorate(demands, g);
    return demands;
  }
};

}  // namespace

std::unique_ptr<TrafficModel> make_traffic_model(const TrafficSpec& spec) {
  spec.validate();
  switch (spec.pattern) {
    case TrafficPattern::kHotspot:
      return std::make_unique<HotspotTrafficModel>(spec);
    case TrafficPattern::kPermutation:
      break;
  }
  return std::make_unique<PermutationTrafficModel>(spec);
}

OnOffGate::OnOffGate(double on_mean, double off_mean, std::uint64_t seed)
    : on_mean_(on_mean), off_mean_(off_mean), rng_(seed) {
  MANETCAP_CHECK_MSG(std::isfinite(on_mean) && std::isfinite(off_mean) &&
                         on_mean > 0.0 && off_mean > 0.0,
                     "OnOffGate: on/off means must be finite and > 0");
  until_ = draw_len(on_mean_);
}

std::uint64_t OnOffGate::draw_len(double mean) {
  // Exponential length, rounded up to a whole slot (so every period lasts
  // at least one slot and the gate always makes progress).
  const double u = rng::uniform01(rng_);
  const double v = std::ceil(-mean * std::log1p(-u));
  if (!(v >= 1.0)) return 1;
  if (v >= 9.0e18) return std::uint64_t{1} << 62;
  return static_cast<std::uint64_t>(v);
}

bool OnOffGate::on_at(std::uint64_t slot) {
  while (slot >= until_) {
    on_ = !on_;
    until_ += draw_len(on_ ? on_mean_ : off_mean_);
  }
  return on_;
}

}  // namespace manetcap::net
