#include "net/traffic.h"

#include <numeric>

#include "util/check.h"

namespace manetcap::net {

std::vector<std::uint32_t> permutation_traffic(std::size_t n,
                                               rng::Xoshiro256& g) {
  MANETCAP_CHECK_MSG(n >= 2, "permutation traffic needs n >= 2");
  std::vector<std::uint32_t> dest(n);
  std::iota(dest.begin(), dest.end(), 0u);
  rng::shuffle(g, dest);
  // Repair fixed points by swapping with a cyclic neighbor; the neighbor
  // cannot itself be a fixed point afterwards because dest[j] == j would
  // have required two fixed points at adjacent slots, which the swap breaks.
  for (std::size_t i = 0; i < n; ++i) {
    if (dest[i] == i) {
      std::size_t j = (i + 1) % n;
      std::swap(dest[i], dest[j]);
    }
  }
  MANETCAP_DCHECK(is_valid_permutation_traffic(dest));
  return dest;
}

bool is_valid_permutation_traffic(const std::vector<std::uint32_t>& dest) {
  std::vector<bool> seen(dest.size(), false);
  for (std::size_t i = 0; i < dest.size(); ++i) {
    std::uint32_t d = dest[i];
    if (d >= dest.size() || d == i || seen[d]) return false;
    seen[d] = true;
  }
  return true;
}

}  // namespace manetcap::net
