#include "net/params.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

#include "util/check.h"

namespace manetcap::net {

namespace {
double npow(std::size_t n, double e) {
  return std::pow(static_cast<double>(n), e);
}
}  // namespace

double ScalingParams::f() const {
  MANETCAP_CHECK(n >= 1);
  return npow(n, alpha);
}

std::size_t ScalingParams::k() const {
  if (!with_bs) return 0;
  return static_cast<std::size_t>(std::max(1.0, std::round(npow(n, K))));
}

std::size_t ScalingParams::m() const {
  if (cluster_free()) return n;
  return static_cast<std::size_t>(std::max(1.0, std::round(npow(n, M))));
}

double ScalingParams::r() const {
  if (cluster_free()) return 0.0;
  return npow(n, -R);
}

double ScalingParams::c() const {
  const std::size_t kk = k();
  MANETCAP_CHECK_MSG(kk >= 1, "c(n) undefined without base stations");
  const double mu_c = npow(n, phi);
  MANETCAP_CHECK_MSG(std::isfinite(mu_c),
                     "c(n): mu_c = n^phi overflows double (n=" << n
                         << ", phi=" << phi << ")");
  const double cc = mu_c / static_cast<double>(kk);
  MANETCAP_CHECK_MSG(
      cc == 0.0 || cc >= std::numeric_limits<double>::min(),
      "c(n): n^phi/k underflows to denormal (n=" << n << ", phi=" << phi
          << ", k=" << kk << ") — wired credits would silently lose "
          << "precision; use a larger phi or treat the backbone as absent");
  return cc;
}

std::size_t ScalingParams::l() const {
  if (!with_bs) return 1;
  return static_cast<std::size_t>(std::max(1.0, std::round(npow(n, L))));
}

double ScalingParams::gamma() const {
  const double mm = static_cast<double>(m());
  MANETCAP_CHECK(mm >= 2.0);
  return std::log(mm) / mm;
}

double ScalingParams::gamma_tilde() const {
  const double per = static_cast<double>(n) / static_cast<double>(m());
  MANETCAP_CHECK_MSG(per > std::exp(1.0),
                     "gamma_tilde needs n/m > e (log positive)");
  const double rr = r();
  return rr * rr * std::log(per) / per;
}

std::string ScalingParams::describe() const {
  std::ostringstream os;
  os << "n=" << n << " alpha=" << alpha;
  if (with_bs) {
    os << " K=" << K << " (k=" << k() << ") phi=" << phi;
    if (L != 0.0) os << " L=" << L << " (l=" << l() << ")";
  }
  if (cluster_free())
    os << " cluster-free";
  else
    os << " M=" << M << " (m=" << m() << ") R=" << R << " (r=" << r() << ")";
  return os.str();
}

std::vector<std::string> ScalingParams::assumption_violations() const {
  std::vector<std::string> v;
  if (alpha < 0.0 || alpha > 0.5)
    v.push_back("alpha outside the paper's focus [0, 1/2] (Remark 1; "
                "alpha > 1/2 is required to populate the trivial regime "
                "with disjoint clusters — see DESIGN.md)");
  if (!cluster_free()) {
    if (R < 0.0 || R > alpha)
      v.push_back("R outside [0, alpha] (clusters must not shrink slower "
                  "than the network grows)");
    if (M - 2.0 * R >= 0.0)
      v.push_back("M - 2R >= 0: clusters overlap w.h.p. (model requires "
                  "M - 2R < 0)");
    if (with_bs && K <= M)
      v.push_back("K <= M: k = omega(m) required so every cluster gets BSs");
  }
  if (with_bs && (K < 0.0 || K > 1.0))
    v.push_back("K outside [0, 1]");
  if (with_bs && L < 0.0)
    v.push_back("L < 0: antennas per BS cannot shrink with n");
  if (with_bs && K + L > 1.0)
    v.push_back("K + L > 1: more BS antennas than MSs (k*l = omega(n)); "
                "the antenna-limited branch saturates at k*l = n");
  return v;
}

}  // namespace manetcap::net
