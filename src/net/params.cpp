#include "net/params.h"

#include <cmath>
#include <sstream>

#include "util/check.h"

namespace manetcap::net {

namespace {
double npow(std::size_t n, double e) {
  return std::pow(static_cast<double>(n), e);
}
}  // namespace

double ScalingParams::f() const {
  MANETCAP_CHECK(n >= 1);
  return npow(n, alpha);
}

std::size_t ScalingParams::k() const {
  if (!with_bs) return 0;
  return static_cast<std::size_t>(std::max(1.0, std::round(npow(n, K))));
}

std::size_t ScalingParams::m() const {
  if (cluster_free()) return n;
  return static_cast<std::size_t>(std::max(1.0, std::round(npow(n, M))));
}

double ScalingParams::r() const {
  if (cluster_free()) return 0.0;
  return npow(n, -R);
}

double ScalingParams::c() const {
  const std::size_t kk = k();
  MANETCAP_CHECK_MSG(kk >= 1, "c(n) undefined without base stations");
  return npow(n, phi) / static_cast<double>(kk);
}

double ScalingParams::gamma() const {
  const double mm = static_cast<double>(m());
  MANETCAP_CHECK(mm >= 2.0);
  return std::log(mm) / mm;
}

double ScalingParams::gamma_tilde() const {
  const double per = static_cast<double>(n) / static_cast<double>(m());
  MANETCAP_CHECK_MSG(per > std::exp(1.0),
                     "gamma_tilde needs n/m > e (log positive)");
  const double rr = r();
  return rr * rr * std::log(per) / per;
}

std::string ScalingParams::describe() const {
  std::ostringstream os;
  os << "n=" << n << " alpha=" << alpha;
  if (with_bs) os << " K=" << K << " (k=" << k() << ") phi=" << phi;
  if (cluster_free())
    os << " cluster-free";
  else
    os << " M=" << M << " (m=" << m() << ") R=" << R << " (r=" << r() << ")";
  return os.str();
}

std::vector<std::string> ScalingParams::assumption_violations() const {
  std::vector<std::string> v;
  if (alpha < 0.0 || alpha > 0.5)
    v.push_back("alpha outside the paper's focus [0, 1/2] (Remark 1; "
                "alpha > 1/2 is required to populate the trivial regime "
                "with disjoint clusters — see DESIGN.md)");
  if (!cluster_free()) {
    if (R < 0.0 || R > alpha)
      v.push_back("R outside [0, alpha] (clusters must not shrink slower "
                  "than the network grows)");
    if (M - 2.0 * R >= 0.0)
      v.push_back("M - 2R >= 0: clusters overlap w.h.p. (model requires "
                  "M - 2R < 0)");
    if (with_bs && K <= M)
      v.push_back("K <= M: k = omega(m) required so every cluster gets BSs");
  }
  if (with_bs && (K < 0.0 || K > 1.0))
    v.push_back("K outside [0, 1]");
  return v;
}

}  // namespace manetcap::net
