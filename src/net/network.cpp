#include "net/network.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "geom/hex.h"
#include "util/check.h"

namespace manetcap::net {

std::string to_string(BsPlacement p) {
  switch (p) {
    case BsPlacement::kClusteredMatched:
      return "clustered-matched";
    case BsPlacement::kUniform:
      return "uniform";
    case BsPlacement::kRegularGrid:
      return "regular-grid";
    case BsPlacement::kClusterGrid:
      return "cluster-hex-grid";
  }
  return "?";
}

Network::Network(const ScalingParams& params, mobility::Shape shape,
                 BsPlacement placement, std::uint64_t seed)
    : params_(params),
      shape_(std::move(shape)),
      placement_(placement),
      seed_(seed) {}

Network Network::with_bs_subset(const std::vector<bool>& keep) const {
  MANETCAP_CHECK_MSG(keep.size() == bs_.size(),
                     "mask size " << keep.size() << " != BS count "
                                  << bs_.size());
  Network out(*this);
  out.bs_.clear();
  out.bs_cluster_.clear();
  for (std::size_t j = 0; j < bs_.size(); ++j) {
    if (!keep[j]) continue;
    out.bs_.push_back(bs_[j]);
    out.bs_cluster_.push_back(bs_cluster_[j]);
  }
  return out;
}

Network Network::build(const ScalingParams& params,
                       mobility::ShapeKind shape_kind, BsPlacement placement,
                       std::uint64_t seed) {
  MANETCAP_CHECK(params.n >= 2);
  Network net(params, mobility::Shape(shape_kind, params.shape_support),
              placement, seed);
  rng::Xoshiro256 g(seed);
  rng::Xoshiro256 g_ms = g.split(1);
  rng::Xoshiro256 g_bs = g.split(2);

  // MS home-points under the clustered model.
  mobility::ClusterSpec spec =
      params.cluster_free()
          ? mobility::ClusterSpec::uniform(params.n)
          : mobility::ClusterSpec{params.m(), params.r()};
  net.ms_ = mobility::place_home_points(params.n, spec, g_ms);

  // BS positions.
  const std::size_t k = params.k();
  net.bs_.resize(k);
  net.bs_cluster_.assign(k, 0);
  if (k == 0) return net;

  switch (placement) {
    case BsPlacement::kClusteredMatched: {
      // Q_j from the same clustered model (reusing the MS cluster centers),
      // then Y_j ~ φ(Y − Q_j): a stationary-shape jitter of scale 1/f.
      auto qs = mobility::place_in_clusters(
          k, net.ms_.cluster_centers,
          params.cluster_free() ? 0.0 : params.r(), g_bs);
      const double inv_f = 1.0 / params.f();
      for (std::size_t j = 0; j < k; ++j) {
        geom::Vec2 v = net.shape_.sample_displacement(g_bs) * inv_f;
        net.bs_[j] = qs.points[j].displaced(v);
        net.bs_cluster_[j] = qs.cluster_of[j];
      }
      break;
    }
    case BsPlacement::kUniform: {
      for (auto& y : net.bs_) y = rng::uniform_point(g_bs);
      break;
    }
    case BsPlacement::kRegularGrid: {
      const auto side = static_cast<std::size_t>(
          std::ceil(std::sqrt(static_cast<double>(k))));
      for (std::size_t j = 0; j < k; ++j) {
        const std::size_t row = j / side, col = j % side;
        net.bs_[j] = {(static_cast<double>(col) + 0.5) / side,
                      (static_cast<double>(row) + 0.5) / side};
      }
      break;
    }
    case BsPlacement::kClusterGrid: {
      // Definition 13: k_i ≈ k/m BSs per cluster on a regular hexagonal
      // lattice tiling the cluster disk, each BS a future cell center.
      MANETCAP_CHECK_MSG(!params.cluster_free(),
                         "cluster-grid BS placement needs clusters; use "
                         "kRegularGrid for cluster-free layouts");
      const std::size_t m = net.ms_.cluster_centers.size();
      const double r = params.r();
      std::size_t placed = 0;
      for (std::size_t ci = 0; ci < m && placed < k; ++ci) {
        const std::size_t quota =
            k / m + (ci < k % m ? 1 : 0);  // even split of k over m
        if (quota == 0) continue;
        // Hex side such that ~quota cells tile the cluster disk; shrink
        // until enough *centers* actually fall inside the disk (boundary
        // effects can leave the nominal side one or two cells short).
        double side = std::sqrt(
            M_PI * r * r /
            (1.5 * std::sqrt(3.0) * static_cast<double>(quota)));
        side = std::max(side, 1e-9);
        std::vector<geom::Hex> cells;
        geom::HexGrid grid(side);
        for (int attempt = 0; attempt < 64; ++attempt) {
          cells = grid.cells_within(r);
          if (cells.size() >= quota) break;
          side *= 0.9;
          grid = geom::HexGrid(side);
        }
        MANETCAP_CHECK_MSG(cells.size() >= quota,
                           "could not tile cluster with " << quota
                                                          << " hex cells");
        // Center-out order gives a deterministic, compact fill.
        std::sort(cells.begin(), cells.end(),
                  [&grid](geom::Hex a, geom::Hex b) {
                    return grid.center(a).norm2() < grid.center(b).norm2();
                  });
        const geom::Point base = net.ms_.cluster_centers[ci];
        for (std::size_t q = 0; q < quota && placed < k; ++q) {
          net.bs_[placed] = base.displaced(grid.center(cells[q]));
          net.bs_cluster_[placed] = static_cast<std::uint32_t>(ci);
          ++placed;
        }
      }
      MANETCAP_CHECK(placed == k);
      break;
    }
  }

  // For non-matched placements, tag each BS with its nearest cluster so
  // cluster-local schemes (weak/trivial regimes) can still find their BSs.
  if (placement != BsPlacement::kClusteredMatched &&
      placement != BsPlacement::kClusterGrid && !params.cluster_free()) {
    for (std::size_t j = 0; j < k; ++j) {
      double best = std::numeric_limits<double>::infinity();
      std::uint32_t arg = 0;
      for (std::uint32_t ci = 0; ci < net.ms_.cluster_centers.size(); ++ci) {
        double d = geom::torus_dist2(net.bs_[j], net.ms_.cluster_centers[ci]);
        if (d < best) {
          best = d;
          arg = ci;
        }
      }
      net.bs_cluster_[j] = arg;
    }
  }
  return net;
}

}  // namespace manetcap::net
