// A sampled network instance: MS home-points, BS positions, mobility shape.
//
// This is the substrate every scheme / estimator operates on. BS placement
// implements the paper's three options: clustered-matched (Section II-A,
// matching the user distribution), uniform, and deterministic regular grid —
// Theorem 6 shows they are order-equivalent in the uniformly dense regime,
// which bench/ablation_placement verifies.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "geom/point.h"
#include "mobility/home_points.h"
#include "mobility/shape.h"
#include "net/params.h"
#include "rng/rng.h"

namespace manetcap::net {

enum class BsPlacement {
  kClusteredMatched,  // Q_j from the clustered model, Y_j ~ φ(Y − Q_j)
  kUniform,           // i.i.d. uniform on the torus
  kRegularGrid,       // deterministic ⌈√k⌉×⌈√k⌉ lattice
  kClusterGrid,       // regular hexagonal lattice inside each cluster —
                      // the scheme C prescription (Definition 13)
};

std::string to_string(BsPlacement p);

/// An immutable sampled instance.
class Network {
 public:
  /// Samples an instance for `params` with the given mobility shape family
  /// and BS placement. Deterministic given `seed`.
  static Network build(const ScalingParams& params,
                       mobility::ShapeKind shape_kind, BsPlacement placement,
                       std::uint64_t seed);

  const ScalingParams& params() const { return params_; }
  const mobility::Shape& shape() const { return shape_; }
  BsPlacement bs_placement() const { return placement_; }

  std::size_t num_ms() const { return ms_.points.size(); }
  std::size_t num_bs() const { return bs_.size(); }

  /// MS home-point layout (points, cluster centers, assignments).
  const mobility::HomePointLayout& ms_layout() const { return ms_; }
  const std::vector<geom::Point>& ms_home() const { return ms_.points; }

  /// BS (static) positions; a BS's home-point is its position (Remark 2).
  const std::vector<geom::Point>& bs_pos() const { return bs_; }

  /// Cluster index of each BS under clustered-matched placement;
  /// for other placements, the nearest cluster center.
  const std::vector<std::uint32_t>& bs_cluster() const { return bs_cluster_; }

  /// Mobility radius D/f(n) on the torus.
  double mobility_radius() const { return params_.mobility_radius(); }

  std::uint64_t seed() const { return seed_; }

  /// Copy of this network keeping only the BSs with keep[j] == true —
  /// failure-injection experiments (BS outages) use this to degrade the
  /// infrastructure without resampling the MSs. ScalingParams (and hence
  /// the per-edge wired bandwidth c(n)) are left untouched: surviving
  /// wires keep their capacity, dead BSs take their wires down with them.
  Network with_bs_subset(const std::vector<bool>& keep) const;

 private:
  Network(const ScalingParams& params, mobility::Shape shape,
          BsPlacement placement, std::uint64_t seed);

  ScalingParams params_;
  mobility::Shape shape_;
  BsPlacement placement_;
  std::uint64_t seed_;
  mobility::HomePointLayout ms_;
  std::vector<geom::Point> bs_;
  std::vector<std::uint32_t> bs_cluster_;
};

}  // namespace manetcap::net
