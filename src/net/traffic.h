// Traffic scenarios: who talks to whom, how much, and when.
//
// The paper's workload (Section II-B) is uniform permutation traffic — n
// source–destination pairs such that every MS is exactly one source and
// one destination and never its own peer, all pairs carrying equal rate λ,
// BSs pure relays that never appear as endpoints. That remains the
// default, via the original permutation_traffic free function.
//
// On top of it sits a pluggable scenario layer (docs/TRAFFIC.md): a
// TrafficModel draws a per-flow demand set — (src, dst, size, start) plus
// an optional on-off arrival process — that BOTH engines consume. The
// spec grammar (TrafficSpec::parse) composes a destination pattern
// (uniform permutation | hotspot) with heavy-tailed Pareto flow sizes,
// exponential on-off bursts and staggered starts, the FaultPlan
// parse/validate/describe discipline applied to traffic. The default spec
// reproduces the historical saturated-CBR behavior byte for byte.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "rng/rng.h"

namespace manetcap::net {

/// dest[i] = destination MS of source i; a fixed-point-free permutation
/// of {0, …, n−1}. Deterministic given `g`'s state.
std::vector<std::uint32_t> permutation_traffic(std::size_t n,
                                               rng::Xoshiro256& g);

/// True iff `dest` is a fixed-point-free permutation (test helper / guard).
bool is_valid_permutation_traffic(const std::vector<std::uint32_t>& dest);

/// Validates a destination map against population n with named errors:
/// one entry per MS, every id in range, no self-loops. This is the guard
/// every traffic consumer (both engines, the trace verifier) runs before
/// indexing per-destination state — a dest id ≥ n is an out-of-bounds
/// read in the routing CSR, not a modeling choice. Does NOT require a
/// permutation: hotspot destination maps are legal many-to-one.
/// Throws manetcap::CheckError on the first violation.
void validate_traffic_dest(const std::vector<std::uint32_t>& dest,
                           std::size_t n, const char* who = "traffic");

/// FlowDemand::size sentinel: the flow never runs out of packets (CBR).
inline constexpr std::uint64_t kUnlimitedFlowSize = ~0ull;

/// One flow's demand, as drawn by a TrafficModel. Flow i is sourced at
/// MS i (engines index per-flow state by source id).
struct FlowDemand {
  std::uint32_t src = 0;
  std::uint32_t dst = 0;
  /// Total packets the source ever offers; kUnlimitedFlowSize = CBR.
  std::uint64_t size = kUnlimitedFlowSize;
  /// First slot the source is active (0 = from the beginning).
  std::uint32_t start = 0;
  /// Exponential on-off arrival process: mean on-burst / off-gap lengths
  /// in slots. Both 0 (the default) = always on.
  double on_mean = 0.0;
  double off_mean = 0.0;

  bool unlimited() const { return size == kUnlimitedFlowSize; }
  bool always_on() const { return on_mean <= 0.0 || off_mean <= 0.0; }
};

/// Destination map of a demand set: dest[i] = demands[i].dst.
std::vector<std::uint32_t> dest_of(const std::vector<FlowDemand>& demands);

/// Validates a demand set against population n with named errors: n
/// flows, flow i sourced at MS i, destinations in range and distinct
/// from their source, sizes ≥ 1, on/off means finite and either both
/// positive or both zero. Throws manetcap::CheckError.
void validate_demands(const std::vector<FlowDemand>& demands, std::size_t n);

enum class TrafficPattern : std::uint8_t {
  kPermutation = 0,  // the paper's uniform permutation
  kHotspot = 1,      // a few hotspot MSs absorb most of the demand
};

const char* to_string(TrafficPattern p);

/// A parsed, validated traffic scenario — the FaultPlan discipline
/// (parse / validate / describe) applied to workloads. The default
/// constructed spec is the historical uniform-permutation CBR.
struct TrafficSpec {
  TrafficPattern pattern = TrafficPattern::kPermutation;
  /// kHotspot: fraction of MSs designated hotspots (≥ 1 after rounding)
  /// and the probability mass a source sends toward the hotspot set.
  double hotspot_frac = 0.1;
  double hotspot_mass = 0.8;
  /// Heavy-tailed flow sizes: Pareto(α, x_m) with x_m chosen so the mean
  /// is `pareto_mean` packets. pareto_mean 0 (default) = unlimited CBR.
  double pareto_alpha = 1.5;
  double pareto_mean = 0.0;
  /// On-off bursty arrivals: exponential on/off period means in slots.
  /// Both 0 (default) = always on.
  double on_mean = 0.0;
  double off_mean = 0.0;
  /// Staggered flow starts, uniform in [0, max_start]. 0 = all at slot 0.
  std::uint32_t max_start = 0;

  /// True iff this spec reproduces the historical behavior exactly
  /// (uniform permutation, unlimited, always-on, start 0) — engines take
  /// the legacy code path byte for byte.
  bool is_default() const;

  /// Named-error validation (manetcap::CheckError on first violation).
  void validate() const;

  /// Parses the docs/TRAFFIC.md grammar: ';'-separated clauses
  ///   perm                 uniform permutation destinations (default)
  ///   hotspot:FRAC,MASS    hotspot destinations
  ///   pareto:ALPHA,MEAN    Pareto flow sizes (α > 1, mean in packets)
  ///   onoff:ON,OFF         exponential on-off bursts (means in slots)
  ///   start:MAX            staggered starts uniform in [0, MAX]
  /// Throws manetcap::CheckError naming the offending token.
  static TrafficSpec parse(const std::string& spec);

  /// One-line human echo, e.g. "hotspot(frac=0.1,mass=0.8) onoff(32,96)".
  std::string describe() const;
};

/// A traffic scenario that can be drawn into a concrete demand set.
/// Stateless after construction; draw() is deterministic given `g`'s
/// state and yields exactly n flows with flow i sourced at MS i.
class TrafficModel {
 public:
  virtual ~TrafficModel() = default;

  const TrafficSpec& spec() const { return spec_; }
  std::string describe() const { return spec_.describe(); }

  /// Draws the demand set for population n (n ≥ 2). The result passes
  /// validate_demands(·, n).
  virtual std::vector<FlowDemand> draw(std::size_t n,
                                       rng::Xoshiro256& g) const = 0;

 protected:
  explicit TrafficModel(TrafficSpec spec) : spec_(spec) {}

  /// Applies the spec's size / start / on-off decorations to a drawn
  /// destination set (field-ordered loops, so the draw sequence is
  /// well-defined regardless of pattern).
  void decorate(std::vector<FlowDemand>& demands, rng::Xoshiro256& g) const;

  TrafficSpec spec_;
};

/// Builds the model for a validated spec.
std::unique_ptr<TrafficModel> make_traffic_model(const TrafficSpec& spec);

/// Exponential on-off source gate: alternating on-bursts and off-gaps
/// with geometric-ized exponential lengths (≥ 1 slot each), starting in
/// an on-burst. Deterministic given the seed and advanced lazily, so
/// per-flow gates are independent of visit order — a requirement for the
/// simulators' bit-identity across shard counts. Query slots in
/// non-decreasing order.
class OnOffGate {
 public:
  /// Always-on gate (on_at is constant true).
  OnOffGate() = default;

  /// Bursty gate with the given mean on/off lengths (slots, both > 0).
  OnOffGate(double on_mean, double off_mean, std::uint64_t seed);

  /// Whether the source may inject at `slot`.
  bool on_at(std::uint64_t slot);

  /// True when this gate actually gates (non-degenerate on/off means).
  bool active() const { return on_mean_ > 0.0 && off_mean_ > 0.0; }

  // Checkpoint support: the evolving state only (sim/slotsim.cpp).
  std::uint64_t until() const { return until_; }
  bool is_on() const { return on_; }
  std::array<std::uint64_t, 4> rng_state() const { return rng_.state(); }
  void restore(std::uint64_t until, bool on,
               const std::array<std::uint64_t, 4>& s) {
    until_ = until;
    on_ = on;
    rng_.set_state(s);
  }

 private:
  std::uint64_t draw_len(double mean);

  double on_mean_ = 0.0;
  double off_mean_ = 0.0;
  rng::Xoshiro256 rng_{0};
  bool on_ = true;
  std::uint64_t until_ = ~0ull;  // next toggle slot; ~0 = never (always on)
};

}  // namespace manetcap::net
