// Uniform permutation traffic (Section II-B).
//
// n source–destination pairs such that every MS is exactly one source and
// one destination and never its own peer; all pairs carry equal rate λ.
// BSs are pure relays and never appear as endpoints.
#pragma once

#include <cstdint>
#include <vector>

#include "rng/rng.h"

namespace manetcap::net {

/// dest[i] = destination MS of source i; a fixed-point-free permutation
/// of {0, …, n−1}. Deterministic given `g`'s state.
std::vector<std::uint32_t> permutation_traffic(std::size_t n,
                                               rng::Xoshiro256& g);

/// True iff `dest` is a fixed-point-free permutation (test helper / guard).
bool is_valid_permutation_traffic(const std::vector<std::uint32_t>& dest);

}  // namespace manetcap::net
